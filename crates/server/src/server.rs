//! The server: acceptor + per-connection handler threads + one committer.
//!
//! ## Write path and the ack barrier
//!
//! Connection handlers never touch the persistent device for writes. They
//! decode ops, enqueue them on a bounded queue (backpressure: producers
//! block while it is full) and hold a *ticket* per op. The committer
//! drains up to `batch_max` ops, runs [`jnvm_kvstore::commit_writes`]
//! (group commit: 3 fences per group, not per op) and resolves the batch's
//! tickets only after that call returns — i.e. after the group durability
//! point *and* the apply phase, so a subsequent GET on the same connection
//! reads its own writes. Handlers release replies strictly in request
//! order: writes when their ticket resolves, reads executed inline after
//! every earlier write on the connection has been acked.
//!
//! ## Crash behaviour
//!
//! Every thread that can touch the device runs under
//! [`jnvm_pmem::catch_crash`]. When the fault-injection engine fires (or a
//! secondary thread trips over the frozen device), the committer marks the
//! server dead, fails every queued ticket, and handlers answer
//! [`Reply::Err`] — never `Ok` — for writes that missed the durability
//! point. The kill-during-traffic torture checks exactly this contract.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jnvm_kvstore::{commit_writes, encode_record, Backend, DataGrid, JnvmBackend, WriteOp};
use jnvm_pmem::{catch_crash, Pmem};
use jnvm_ycsb::Histogram;

use crate::proto::{encode_reply, parse_frame, ParseOutcome, Reply, Request};

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum ops the committer drains into one batch.
    pub batch_max: usize,
    /// Bounded-queue capacity; producers block (backpressure) beyond it.
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch_max: 64,
            queue_cap: 256,
        }
    }
}

/// Counters the server exports (also rendered by STATS).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Writes acknowledged `Ok` — each one durable before its reply left.
    pub acked_writes: u64,
    /// Writes answered `NotFound` (absent SETF/DEL target).
    pub nacked_writes: u64,
    /// Writes answered `Err` (crash before the durability point).
    pub failed_writes: u64,
    /// Commit groups issued (3 ordering fences each on the FA path).
    pub groups: u64,
    /// Batches drained by the committer.
    pub batches: u64,
    /// Connections accepted.
    pub connections: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TicketState {
    Waiting,
    /// Committed and durable; `true` = applied, `false` = target absent.
    Done(bool),
    /// The server died before this op's durability point.
    Failed,
}

struct Ticket {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            state: Mutex::new(TicketState::Waiting),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, s: TicketState) {
        *self.state.lock().expect("ticket lock") = s;
        self.cv.notify_all();
    }

    /// Block until resolved. The committer resolves every ticket it ever
    /// dequeues (including on the crash path), so the timeout loop is only
    /// a backstop against the server dying between enqueue and dequeue.
    fn wait(&self, shared: &Shared) -> TicketState {
        let mut st = self.state.lock().expect("ticket lock");
        loop {
            match *st {
                TicketState::Waiting => {}
                resolved => return resolved,
            }
            if shared.dead.load(Ordering::Acquire) {
                return TicketState::Failed;
            }
            let (g, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .expect("ticket wait");
            st = g;
        }
    }
}

struct Pending {
    op: WriteOp,
    ticket: Arc<Ticket>,
}

struct Shared {
    grid: Arc<DataGrid>,
    be: Arc<JnvmBackend>,
    pmem: Arc<Pmem>,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<Pending>>,
    /// Committer waits here for work.
    queue_cv: Condvar,
    /// Producers wait here for queue space.
    space_cv: Condvar,
    shutdown: AtomicBool,
    dead: AtomicBool,
    acked_writes: AtomicU64,
    nacked_writes: AtomicU64,
    failed_writes: AtomicU64,
    groups: AtomicU64,
    batches: AtomicU64,
    connections: AtomicU64,
    /// Per-connection write ack-latency histograms, merged at conn close.
    latency: Mutex<Histogram>,
}

/// A running server. Dropping it without [`Server::shutdown`] leaks the
/// listener thread until process exit; tests always call `shutdown`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    committer: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `127.0.0.1:0` (ephemeral port) and start serving `grid`/`be`.
    /// `be` must be the backend `grid` was built over; all writes to it
    /// must flow through this server while it runs (the group committer's
    /// exclusive-writer contract).
    pub fn start(
        grid: Arc<DataGrid>,
        be: Arc<JnvmBackend>,
        pmem: Arc<Pmem>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            grid,
            be,
            pmem,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            space_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            acked_writes: AtomicU64::new(0),
            nacked_writes: AtomicU64::new(0),
            failed_writes: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            latency: Mutex::new(Histogram::new()),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let committer = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || committer_loop(&shared))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || acceptor_loop(listener, &shared, &handlers))
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            committer: Some(committer),
            handlers,
        })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True after a (simulated) crash killed the write path.
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// True once shutdown was requested (SHUTDOWN frame or [`Server::shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        snapshot(&self.shared)
    }

    /// Merged write ack-latency histogram of all *closed* connections.
    pub fn latency(&self) -> Histogram {
        self.shared.latency.lock().expect("latency lock").clone()
    }

    /// Stop accepting, drain queued writes, join every thread.
    pub fn shutdown(mut self) {
        request_shutdown(&self.shared);
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for h in self.handlers.lock().expect("handlers lock").drain(..) {
            let _ = h.join();
        }
        if let Some(c) = self.committer.take() {
            let _ = c.join();
        }
    }
}

fn request_shutdown(shared: &Shared) {
    // Under the queue lock so the committer's empty-queue exit check and
    // the producers' reject check see a consistent flag.
    let _q = shared.queue.lock().expect("queue lock");
    shared.shutdown.store(true, Ordering::Release);
    shared.queue_cv.notify_all();
    shared.space_cv.notify_all();
}

fn snapshot(shared: &Shared) -> ServerStats {
    ServerStats {
        acked_writes: shared.acked_writes.load(Ordering::Relaxed),
        nacked_writes: shared.nacked_writes.load(Ordering::Relaxed),
        failed_writes: shared.failed_writes.load(Ordering::Relaxed),
        groups: shared.groups.load(Ordering::Relaxed),
        batches: shared.batches.load(Ordering::Relaxed),
        connections: shared.connections.load(Ordering::Relaxed),
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let h = std::thread::spawn(move || {
            // A crash point can fire under this thread (a GET against the
            // frozen device, or the armed op itself): unwind here, mark the
            // server dead, drop the connection.
            if catch_crash(|| handle_conn(&shared, stream)).is_err() {
                shared.dead.store(true, Ordering::Release);
            }
        });
        handlers.lock().expect("handlers lock").push(h);
    }
}

fn committer_loop(shared: &Arc<Shared>) {
    loop {
        let batch: Vec<Pending> = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if !q.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) || shared.dead.load(Ordering::Acquire)
                {
                    return;
                }
                let (g, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("queue wait");
                q = g;
            }
            let n = q.len().min(shared.cfg.batch_max);
            let batch: Vec<Pending> = q.drain(..n).collect();
            shared.space_cv.notify_all();
            batch
        };
        let ops: Vec<WriteOp> = batch.iter().map(|p| p.op.clone()).collect();
        match catch_crash(|| commit_writes(&shared.grid, &shared.be, &ops)) {
            Ok(out) => {
                // The group durability point is behind us: release acks.
                shared.groups.fetch_add(out.groups as u64, Ordering::Relaxed);
                shared.batches.fetch_add(1, Ordering::Relaxed);
                for (p, ok) in batch.iter().zip(out.results.iter()) {
                    p.ticket.resolve(TicketState::Done(*ok));
                }
            }
            Err(_) => {
                // Power failed mid-batch: nothing here reached its
                // durability point as a group — refuse to ack any of it.
                shared.dead.store(true, Ordering::Release);
                for p in &batch {
                    p.ticket.resolve(TicketState::Failed);
                }
                let mut q = shared.queue.lock().expect("queue lock");
                for p in q.drain(..) {
                    p.ticket.resolve(TicketState::Failed);
                }
                shared.space_cv.notify_all();
                return;
            }
        }
    }
}

/// Enqueue a write, blocking while the queue is full (backpressure).
fn enqueue(shared: &Shared, op: WriteOp) -> Result<Arc<Ticket>, &'static str> {
    let mut q = shared.queue.lock().expect("queue lock");
    loop {
        if shared.dead.load(Ordering::Acquire) {
            return Err("server crashed");
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return Err("server shutting down");
        }
        if q.len() < shared.cfg.queue_cap {
            break;
        }
        let (g, _) = shared
            .space_cv
            .wait_timeout(q, Duration::from_millis(50))
            .expect("space wait");
        q = g;
    }
    let ticket = Arc::new(Ticket::new());
    q.push_back(Pending {
        op,
        ticket: Arc::clone(&ticket),
    });
    shared.queue_cv.notify_one();
    Ok(ticket)
}

fn send(stream: &mut TcpStream, reply: &Reply) -> bool {
    stream.write_all(&encode_reply(reply)).is_ok()
}

/// Release replies for every outstanding write, in request order. Returns
/// `false` when the connection (or the server) is done for.
fn flush_outstanding(
    shared: &Shared,
    outstanding: &mut VecDeque<(Arc<Ticket>, Instant)>,
    stream: &mut TcpStream,
    hist: &mut Histogram,
) -> bool {
    while let Some((ticket, enqueued)) = outstanding.pop_front() {
        match ticket.wait(shared) {
            TicketState::Done(true) => {
                shared.acked_writes.fetch_add(1, Ordering::Relaxed);
                hist.record(enqueued.elapsed().as_nanos() as u64);
                if !send(stream, &Reply::Ok) {
                    return false;
                }
            }
            TicketState::Done(false) => {
                shared.nacked_writes.fetch_add(1, Ordering::Relaxed);
                if !send(stream, &Reply::NotFound) {
                    return false;
                }
            }
            TicketState::Waiting | TicketState::Failed => {
                shared.failed_writes.fetch_add(1, Ordering::Relaxed);
                let _ = send(stream, &Reply::Err("write lost to a crash".into()));
                return false;
            }
        }
    }
    true
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut outstanding: VecDeque<(Arc<Ticket>, Instant)> = VecDeque::new();
    let mut hist = Histogram::new();

    'conn: loop {
        // Drain every complete frame already buffered (pipelining).
        let mut consumed = 0;
        loop {
            let outcome = parse_frame(&buf[consumed..]);
            let (req, n) = match outcome {
                ParseOutcome::Incomplete => break,
                // Unparseable stream: cut the connection. Whatever writes
                // are already queued stay queued — they were never acked,
                // and the committer completes or fails them on its own.
                ParseOutcome::Malformed(_) => break 'conn,
                ParseOutcome::Frame(req, n) => (req, n),
            };
            consumed += n;
            let write_op = match req {
                Request::Set(rec) => Some(WriteOp::Set(rec)),
                Request::SetField { key, field, value } => {
                    Some(WriteOp::SetField { key, field, value })
                }
                Request::Del(key) => Some(WriteOp::Del(key)),
                other => {
                    // Non-write requests ride behind every earlier write on
                    // this connection: flush first so replies stay in
                    // request order and reads see the connection's own
                    // acked writes.
                    if !flush_outstanding(shared, &mut outstanding, &mut stream, &mut hist) {
                        break 'conn;
                    }
                    let shutdown = matches!(other, Request::Shutdown);
                    let reply = match other {
                        Request::Get(key) => match shared.grid.read(&key) {
                            Some(rec) => Reply::Value(encode_record(&rec)),
                            None => Reply::NotFound,
                        },
                        Request::Len => {
                            Reply::Value((shared.grid.len() as u64).to_le_bytes().to_vec())
                        }
                        Request::Stats => Reply::Value(stats_text(shared).into_bytes()),
                        Request::Shutdown => Reply::Ok,
                        Request::Invalid(m) => Reply::Err(m.to_string()),
                        Request::Set(_) | Request::SetField { .. } | Request::Del(_) => {
                            unreachable!("writes handled above")
                        }
                    };
                    if !send(&mut stream, &reply) {
                        break 'conn;
                    }
                    if shutdown {
                        request_shutdown(shared);
                        break 'conn;
                    }
                    continue;
                }
            };
            if let Some(op) = write_op {
                match enqueue(shared, op) {
                    Ok(ticket) => outstanding.push_back((ticket, Instant::now())),
                    Err(msg) => {
                        if !flush_outstanding(shared, &mut outstanding, &mut stream, &mut hist) {
                            break 'conn;
                        }
                        if !send(&mut stream, &Reply::Err(msg.to_string())) {
                            break 'conn;
                        }
                    }
                }
            }
        }
        buf.drain(..consumed);

        // Everything parsed is enqueued; release the acks before blocking
        // on the socket again so single-window clients make progress.
        if !flush_outstanding(shared, &mut outstanding, &mut stream, &mut hist) {
            break 'conn;
        }

        match stream.read(&mut tmp) {
            Ok(0) => break 'conn,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.dead.load(Ordering::Acquire) || shared.shutdown.load(Ordering::Acquire)
                {
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }

    shared
        .latency
        .lock()
        .expect("latency lock")
        .merge(&hist);
}

fn stats_text(shared: &Shared) -> String {
    let s = snapshot(shared);
    let g = shared.grid.metrics();
    let d = shared.pmem.stats();
    let lat = shared.latency.lock().expect("latency lock").summary();
    let acked = s.acked_writes.max(1);
    format!(
        "backend={}\nlen={}\nreads={}\nwrites={}\nhits={}\nmisses={}\n\
         acked_writes={}\nnacked_writes={}\nfailed_writes={}\ngroups={}\nbatches={}\nconnections={}\n\
         pwbs={}\npfences={}\npsyncs={}\nordering_points={}\nordering_points_per_acked_write={:.4}\n\
         redundant_pwbs={}\nredundant_fences={}\nsan_violations={}\nack_latency={}\n",
        shared.be.name(),
        shared.grid.len(),
        g.reads.load(Ordering::Relaxed),
        g.writes.load(Ordering::Relaxed),
        g.hits.load(Ordering::Relaxed),
        g.misses.load(Ordering::Relaxed),
        s.acked_writes,
        s.nacked_writes,
        s.failed_writes,
        s.groups,
        s.batches,
        s.connections,
        d.pwbs,
        d.pfences,
        d.psyncs,
        d.ordering_points(),
        d.ordering_points() as f64 / acked as f64,
        d.redundant_pwbs,
        d.redundant_fences,
        d.san_violations,
        lat.display_us(),
    )
}
