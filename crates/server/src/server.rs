//! The server: acceptor + per-connection handler threads + one group
//! committer **per pool shard**.
//!
//! ## Sharded write path and the ack barrier
//!
//! The server runs over N independent pool shards (grid + backend +
//! device each; see [`jnvm_kvstore::ShardedKv`]). Connection handlers
//! never touch the persistent devices for writes. They decode ops, route
//! each by key hash ([`jnvm_kvstore::shard_for_key`]) to its shard's
//! bounded queue (backpressure: producers block while that queue is full)
//! and hold a *ticket* per op. Each shard's committer drains up to
//! `batch_max` ops from its own queue, runs
//! [`jnvm_kvstore::commit_writes`] against its own backend (group commit:
//! 3 fences per group, not per op) and resolves the batch's tickets only
//! after that call returns — i.e. after the group durability point *and*
//! the apply phase, so a subsequent GET on the same connection reads its
//! own writes. K writes spread over N shards pay N *concurrent* fence
//! passes instead of serializing behind one committer. Handlers release
//! replies strictly in request order: writes when their ticket resolves,
//! reads executed inline after every earlier write on the connection has
//! been acked.
//!
//! ## Crash behaviour: per-shard death
//!
//! Every thread that can touch a device runs under
//! [`jnvm_pmem::catch_crash`]. When the fault-injection engine fires on
//! one shard's device, that shard's committer marks **its shard** dead
//! and fails every ticket queued there; the other shards keep committing.
//! A dead shard refuses all further service — writes are answered
//! [`Reply::Err`] at enqueue, and GETs routed to it answer `Err` too (its
//! post-crash image may hold unrecovered in-flight state; only the
//! recovery pass may look at it). Writes that missed their durability
//! point are never answered `Ok`. The kill-during-traffic torture checks
//! exactly this contract, including that non-crashed shards keep acking.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jnvm_kvstore::{
    commit_writes, encode_record, shard_for_key, Backend, DataGrid, JnvmBackend, WriteOp,
};
use jnvm_pmem::{catch_crash, thread_charged_ns, Pmem, StatsSnapshot};
use jnvm_ycsb::Histogram;

use crate::proto::{encode_reply, parse_frame, ParseOutcome, Reply, Request};

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum ops a committer drains into one batch.
    pub batch_max: usize,
    /// Per-shard bounded-queue capacity; producers block (backpressure)
    /// beyond it.
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch_max: 64,
            queue_cap: 256,
        }
    }
}

/// One pool shard's serving surface, handed to [`Server::start_sharded`].
/// `be` must be the backend `grid` was built over, and `pmem` the device
/// both live on; all writes to the backend must flow through this server
/// while it runs (the group committer's exclusive-writer contract, now
/// per shard).
pub struct ShardHandle {
    /// The shard's grid.
    pub grid: Arc<DataGrid>,
    /// The shard's backend.
    pub be: Arc<JnvmBackend>,
    /// The shard's device.
    pub pmem: Arc<Pmem>,
}

/// Counters the server exports (also rendered by STATS).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Writes acknowledged `Ok` — each one durable before its reply left.
    pub acked_writes: u64,
    /// Writes answered `NotFound` (absent SETF/DEL target).
    pub nacked_writes: u64,
    /// Writes answered `Err` (crash before the durability point, or
    /// routed to an already-dead shard).
    pub failed_writes: u64,
    /// Commit groups issued (3 ordering fences each on the FA path).
    pub groups: u64,
    /// Batches drained across all committers.
    pub batches: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Pool shards the server runs over.
    pub shards: u64,
    /// Shards whose committer died to a (simulated) crash.
    pub dead_shards: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TicketState {
    Waiting,
    /// Committed and durable; `true` = applied, `false` = target absent.
    Done(bool),
    /// The shard died before this op's durability point.
    Failed,
}

struct Ticket {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            state: Mutex::new(TicketState::Waiting),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, s: TicketState) {
        *self.state.lock().expect("ticket lock") = s;
        self.cv.notify_all();
    }

    /// Block until resolved. The shard's committer resolves every ticket
    /// it ever dequeues (including on the crash path), so the timeout
    /// loop is only a backstop against the shard dying between enqueue
    /// and dequeue.
    fn wait(&self, shard: &ShardState) -> TicketState {
        let mut st = self.state.lock().expect("ticket lock");
        loop {
            match *st {
                TicketState::Waiting => {}
                resolved => return resolved,
            }
            if shard.dead.load(Ordering::Acquire) {
                return TicketState::Failed;
            }
            let (g, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .expect("ticket wait");
            st = g;
        }
    }
}

struct Pending {
    op: WriteOp,
    ticket: Arc<Ticket>,
}

/// Per-shard serving state: the stack plus the committer's queue and
/// crash flag. Each shard's committer owns exactly this shard — the
/// footprint-disjointness the FA group commit asserts holds trivially
/// across shards because their devices are disjoint.
struct ShardState {
    grid: Arc<DataGrid>,
    be: Arc<JnvmBackend>,
    pmem: Arc<Pmem>,
    queue: Mutex<VecDeque<Pending>>,
    /// The shard's committer waits here for work.
    queue_cv: Condvar,
    /// Producers wait here for queue space.
    space_cv: Condvar,
    /// This shard's write path died to a crash.
    dead: AtomicBool,
    groups: AtomicU64,
    batches: AtomicU64,
    /// Modeled device nanoseconds charged to this shard's committer
    /// thread ([`jnvm_pmem::thread_charged_ns`]), updated after every
    /// batch — the commit critical path of this shard.
    charged_ns: AtomicU64,
}

struct Shared {
    cfg: ServerConfig,
    shards: Vec<ShardState>,
    shutdown: AtomicBool,
    acked_writes: AtomicU64,
    nacked_writes: AtomicU64,
    failed_writes: AtomicU64,
    connections: AtomicU64,
    /// Per-connection write ack-latency histograms, merged at conn close.
    latency: Mutex<Histogram>,
}

impl Shared {
    fn route(&self, key: &str) -> usize {
        shard_for_key(key, self.shards.len())
    }

    fn all_dead(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.dead.load(Ordering::Acquire))
    }
}

/// A running server. Dropping it without [`Server::shutdown`] leaks the
/// listener thread until process exit; tests always call `shutdown`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    committers: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Single-shard convenience wrapper around [`Server::start_sharded`]
    /// — the degenerate N=1 configuration every pre-sharding caller used.
    pub fn start(
        grid: Arc<DataGrid>,
        be: Arc<JnvmBackend>,
        pmem: Arc<Pmem>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::start_sharded(vec![ShardHandle { grid, be, pmem }], cfg)
    }

    /// Bind `127.0.0.1:0` (ephemeral port) and start serving the given
    /// pool shards, spawning one group committer per shard. Keys route to
    /// shards by [`shard_for_key`]; the handles must be in shard order
    /// (index `i` serves routing bucket `i`).
    pub fn start_sharded(
        handles: Vec<ShardHandle>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(!handles.is_empty(), "the server needs at least one shard");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shards: Vec<ShardState> = handles
            .into_iter()
            .map(|h| ShardState {
                grid: h.grid,
                be: h.be,
                pmem: h.pmem,
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                space_cv: Condvar::new(),
                dead: AtomicBool::new(false),
                groups: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                charged_ns: AtomicU64::new(0),
            })
            .collect();
        let shared = Arc::new(Shared {
            cfg,
            shards,
            shutdown: AtomicBool::new(false),
            acked_writes: AtomicU64::new(0),
            nacked_writes: AtomicU64::new(0),
            failed_writes: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            latency: Mutex::new(Histogram::new()),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let committers = (0..shared.shards.len())
            .map(|si| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || committer_loop(&shared, si))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || acceptor_loop(listener, &shared, &handlers))
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            committers,
            handlers,
        })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of pool shards served.
    pub fn num_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// True after a (simulated) crash killed **any** shard's write path.
    pub fn is_dead(&self) -> bool {
        self.shared
            .shards
            .iter()
            .any(|s| s.dead.load(Ordering::Acquire))
    }

    /// True once shutdown was requested (SHUTDOWN frame or [`Server::shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        snapshot(&self.shared)
    }

    /// Modeled device nanoseconds charged to each shard's committer so
    /// far, in shard order. The max over shards is the sharded engine's
    /// commit critical path (all committers run concurrently).
    pub fn committer_charged_ns(&self) -> Vec<u64> {
        self.shared
            .shards
            .iter()
            .map(|s| s.charged_ns.load(Ordering::Acquire))
            .collect()
    }

    /// Merged write ack-latency histogram of all *closed* connections.
    pub fn latency(&self) -> Histogram {
        self.shared.latency.lock().expect("latency lock").clone()
    }

    /// Stop accepting, drain queued writes, join every thread.
    pub fn shutdown(mut self) {
        request_shutdown(&self.shared);
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for h in self.handlers.lock().expect("handlers lock").drain(..) {
            let _ = h.join();
        }
        for c in self.committers.drain(..) {
            let _ = c.join();
        }
    }
}

fn request_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    // Per shard, under its queue lock so the committer's empty-queue exit
    // check and the producers' reject check see a consistent flag.
    for shard in &shared.shards {
        let _q = shard.queue.lock().expect("queue lock");
        shard.queue_cv.notify_all();
        shard.space_cv.notify_all();
    }
}

fn snapshot(shared: &Shared) -> ServerStats {
    ServerStats {
        acked_writes: shared.acked_writes.load(Ordering::Relaxed),
        nacked_writes: shared.nacked_writes.load(Ordering::Relaxed),
        failed_writes: shared.failed_writes.load(Ordering::Relaxed),
        groups: shared
            .shards
            .iter()
            .map(|s| s.groups.load(Ordering::Relaxed))
            .sum(),
        batches: shared
            .shards
            .iter()
            .map(|s| s.batches.load(Ordering::Relaxed))
            .sum(),
        connections: shared.connections.load(Ordering::Relaxed),
        shards: shared.shards.len() as u64,
        dead_shards: shared
            .shards
            .iter()
            .filter(|s| s.dead.load(Ordering::Acquire))
            .count() as u64,
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let h = std::thread::spawn(move || {
            // Handlers only read, and device reads never trip the
            // injection engine — but a non-crash panic unwinding through
            // here must still not silently strand the server, so the
            // catch stays as a conservative backstop. A crash that does
            // reach a handler cannot be attributed to one shard: mark
            // them all dead.
            if catch_crash(|| handle_conn(&shared, stream)).is_err() {
                for s in &shared.shards {
                    s.dead.store(true, Ordering::Release);
                }
            }
        });
        handlers.lock().expect("handlers lock").push(h);
    }
}

fn committer_loop(shared: &Arc<Shared>, si: usize) {
    let shard = &shared.shards[si];
    loop {
        let batch: Vec<Pending> = {
            let mut q = shard.queue.lock().expect("queue lock");
            loop {
                if !q.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) || shard.dead.load(Ordering::Acquire)
                {
                    return;
                }
                let (g, _) = shard
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("queue wait");
                q = g;
            }
            let n = q.len().min(shared.cfg.batch_max);
            let batch: Vec<Pending> = q.drain(..n).collect();
            shard.space_cv.notify_all();
            batch
        };
        let ops: Vec<WriteOp> = batch.iter().map(|p| p.op.clone()).collect();
        debug_assert!(
            ops.iter().all(|op| shared.route(op.key()) == si),
            "op routed to the wrong shard's committer"
        );
        match catch_crash(|| commit_writes(&shard.grid, &shard.be, &ops)) {
            Ok(out) => {
                // The group durability point is behind us: release acks.
                shard.groups.fetch_add(out.groups as u64, Ordering::Relaxed);
                shard.batches.fetch_add(1, Ordering::Relaxed);
                shard.charged_ns.store(thread_charged_ns(), Ordering::Release);
                for (p, ok) in batch.iter().zip(out.results.iter()) {
                    p.ticket.resolve(TicketState::Done(*ok));
                }
            }
            Err(_) => {
                // Power failed mid-batch on THIS shard's device: nothing
                // here reached its durability point as a group — refuse
                // to ack any of it, and take only this shard down. The
                // other shards' committers never touch this device and
                // keep committing.
                shard.dead.store(true, Ordering::Release);
                for p in &batch {
                    p.ticket.resolve(TicketState::Failed);
                }
                let mut q = shard.queue.lock().expect("queue lock");
                for p in q.drain(..) {
                    p.ticket.resolve(TicketState::Failed);
                }
                shard.space_cv.notify_all();
                return;
            }
        }
    }
}

/// Enqueue a write on its shard, blocking while that shard's queue is
/// full (backpressure). Returns the ticket and the shard index.
fn enqueue(shared: &Shared, op: WriteOp) -> Result<(Arc<Ticket>, usize), &'static str> {
    let si = shared.route(op.key());
    let shard = &shared.shards[si];
    let mut q = shard.queue.lock().expect("queue lock");
    loop {
        if shard.dead.load(Ordering::Acquire) {
            return Err("shard crashed");
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return Err("server shutting down");
        }
        if q.len() < shared.cfg.queue_cap {
            break;
        }
        let (g, _) = shard
            .space_cv
            .wait_timeout(q, Duration::from_millis(50))
            .expect("space wait");
        q = g;
    }
    let ticket = Arc::new(Ticket::new());
    q.push_back(Pending {
        op,
        ticket: Arc::clone(&ticket),
    });
    shard.queue_cv.notify_one();
    Ok((ticket, si))
}

fn send(stream: &mut TcpStream, reply: &Reply) -> bool {
    stream.write_all(&encode_reply(reply)).is_ok()
}

/// Release replies for every outstanding write, in request order. A
/// failed ticket (its shard crashed) answers `Err` but does **not** end
/// the connection: the other shards are still serving, and per-shard
/// failure isolation is the point of the sharded engine. Returns `false`
/// only when the connection itself is done for.
fn flush_outstanding(
    shared: &Shared,
    outstanding: &mut VecDeque<(Arc<Ticket>, usize, Instant)>,
    stream: &mut TcpStream,
    hist: &mut Histogram,
) -> bool {
    while let Some((ticket, si, enqueued)) = outstanding.pop_front() {
        match ticket.wait(&shared.shards[si]) {
            TicketState::Done(true) => {
                shared.acked_writes.fetch_add(1, Ordering::Relaxed);
                hist.record(enqueued.elapsed().as_nanos() as u64);
                if !send(stream, &Reply::Ok) {
                    return false;
                }
            }
            TicketState::Done(false) => {
                shared.nacked_writes.fetch_add(1, Ordering::Relaxed);
                if !send(stream, &Reply::NotFound) {
                    return false;
                }
            }
            TicketState::Waiting | TicketState::Failed => {
                shared.failed_writes.fetch_add(1, Ordering::Relaxed);
                if !send(stream, &Reply::Err("write lost to a crash".into())) {
                    return false;
                }
            }
        }
    }
    true
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut outstanding: VecDeque<(Arc<Ticket>, usize, Instant)> = VecDeque::new();
    let mut hist = Histogram::new();

    'conn: loop {
        // Drain every complete frame already buffered (pipelining).
        let mut consumed = 0;
        loop {
            let outcome = parse_frame(&buf[consumed..]);
            let (req, n) = match outcome {
                ParseOutcome::Incomplete => break,
                // Unparseable stream: cut the connection. Whatever writes
                // are already queued stay queued — they were never acked,
                // and the committers complete or fail them on their own.
                ParseOutcome::Malformed(_) => break 'conn,
                ParseOutcome::Frame(req, n) => (req, n),
            };
            consumed += n;
            let write_op = match req {
                Request::Set(rec) => Some(WriteOp::Set(rec)),
                Request::SetField { key, field, value } => {
                    Some(WriteOp::SetField { key, field, value })
                }
                Request::Del(key) => Some(WriteOp::Del(key)),
                other => {
                    // Non-write requests ride behind every earlier write on
                    // this connection: flush first so replies stay in
                    // request order and reads see the connection's own
                    // acked writes.
                    if !flush_outstanding(shared, &mut outstanding, &mut stream, &mut hist) {
                        break 'conn;
                    }
                    let shutdown = matches!(other, Request::Shutdown);
                    let reply = match other {
                        Request::Get(key) => {
                            let shard = &shared.shards[shared.route(&key)];
                            if shard.dead.load(Ordering::Acquire) {
                                // A dead shard's image may hold in-flight
                                // state only recovery may interpret:
                                // refuse reads rather than serve it.
                                Reply::Err("shard crashed".into())
                            } else {
                                match shard.grid.read(&key) {
                                    Some(rec) => Reply::Value(encode_record(&rec)),
                                    None => Reply::NotFound,
                                }
                            }
                        }
                        Request::Len => {
                            let total: u64 =
                                shared.shards.iter().map(|s| s.grid.len() as u64).sum();
                            Reply::Value(total.to_le_bytes().to_vec())
                        }
                        Request::Stats => Reply::Value(stats_text(shared).into_bytes()),
                        Request::Shutdown => Reply::Ok,
                        Request::Invalid(m) => Reply::Err(m.to_string()),
                        Request::Set(_) | Request::SetField { .. } | Request::Del(_) => {
                            unreachable!("writes handled above")
                        }
                    };
                    if !send(&mut stream, &reply) {
                        break 'conn;
                    }
                    if shutdown {
                        request_shutdown(shared);
                        break 'conn;
                    }
                    continue;
                }
            };
            if let Some(op) = write_op {
                match enqueue(shared, op) {
                    Ok((ticket, si)) => outstanding.push_back((ticket, si, Instant::now())),
                    Err(msg) => {
                        if !flush_outstanding(shared, &mut outstanding, &mut stream, &mut hist) {
                            break 'conn;
                        }
                        shared.failed_writes.fetch_add(1, Ordering::Relaxed);
                        if !send(&mut stream, &Reply::Err(msg.to_string())) {
                            break 'conn;
                        }
                    }
                }
            }
        }
        buf.drain(..consumed);

        // Everything parsed is enqueued; release the acks before blocking
        // on the socket again so single-window clients make progress.
        if !flush_outstanding(shared, &mut outstanding, &mut stream, &mut hist) {
            break 'conn;
        }

        match stream.read(&mut tmp) {
            Ok(0) => break 'conn,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.all_dead() || shared.shutdown.load(Ordering::Acquire) {
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }

    shared
        .latency
        .lock()
        .expect("latency lock")
        .merge(&hist);
}

fn stats_text(shared: &Shared) -> String {
    let s = snapshot(shared);
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut len = 0usize;
    let mut d = StatsSnapshot::default();
    for shard in &shared.shards {
        let g = shard.grid.metrics();
        reads += g.reads.load(Ordering::Relaxed);
        writes += g.writes.load(Ordering::Relaxed);
        hits += g.hits.load(Ordering::Relaxed);
        misses += g.misses.load(Ordering::Relaxed);
        len += shard.grid.len();
        d.absorb(&shard.pmem.stats());
    }
    let lat = shared.latency.lock().expect("latency lock").summary();
    let acked = s.acked_writes.max(1);
    format!(
        "backend={}\nshards={}\ndead_shards={}\nlen={}\nreads={}\nwrites={}\nhits={}\nmisses={}\n\
         acked_writes={}\nnacked_writes={}\nfailed_writes={}\ngroups={}\nbatches={}\nconnections={}\n\
         pwbs={}\npfences={}\npsyncs={}\nordering_points={}\nordering_points_per_acked_write={:.4}\n\
         redundant_pwbs={}\nredundant_fences={}\nsan_violations={}\nack_latency={}\n",
        shared.shards[0].be.name(),
        s.shards,
        s.dead_shards,
        len,
        reads,
        writes,
        hits,
        misses,
        s.acked_writes,
        s.nacked_writes,
        s.failed_writes,
        s.groups,
        s.batches,
        s.connections,
        d.pwbs,
        d.pfences,
        d.psyncs,
        d.ordering_points(),
        d.ordering_points() as f64 / acked as f64,
        d.redundant_pwbs,
        d.redundant_fences,
        d.san_violations,
        lat.display_us(),
    )
}
