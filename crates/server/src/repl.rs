//! The backup side of `jnvm-repl`: an in-process endpoint that owns a
//! backup replica's stack and applies streamed commit groups.
//!
//! The committer is the only peer: it connects once over loopback, the
//! two sides exchange the protocol hello, and from then on the link
//! carries only `REPL_APPLY` frames downstream and `REPL_ACK` replies
//! upstream. The endpoint applies each group with its *own*
//! [`commit_writes`] pass — its own 3 fences, on its own thread, against
//! its own device (persistence domains are per thread, so the backup's
//! durability point belongs to this thread's fences) — and acks the
//! group's sequence number only after that call returns. An ack therefore
//! means *durable on the backup*, which is exactly what the committer
//! needs before releasing client replies.
//!
//! Exit conditions, all silent closes of the link:
//!
//! * **EOF** — the committer dropped its end (orderly shutdown, or a
//!   promotion quiescing the link). TCP delivers everything written
//!   before the close, so by the time `read` returns 0 every streamed
//!   group has been applied: the promoted backup is a superset-prefix of
//!   the crashed primary. The committer *joins* this thread before
//!   committing on the backup itself, which is what makes the handoff an
//!   exclusive-writer handoff rather than a race.
//! * **injected crash** — the backup's device froze mid-apply. The
//!   endpoint stops acking and closes; the committer sees the dead link,
//!   degrades to solo mode and keeps acking off the primary alone.
//! * **malformed frame / non-REPL frame** — the link is corrupt; close.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use jnvm_kvstore::{commit_writes, DataGrid, JnvmBackend};
use jnvm_pmem::catch_crash;

use crate::proto::{encode_reply, handshake, parse_frame, ParseOutcome, Reply, Request};

/// Spawn the backup endpoint for one shard's backup replica and connect
/// the committer-side link to it. Returns the link (hello already
/// exchanged) and the endpoint thread's handle; the committer must join
/// the handle after closing the link and before writing to the backup
/// stack itself.
pub(crate) fn start_backup_endpoint(
    grid: Arc<DataGrid>,
    be: Arc<JnvmBackend>,
) -> std::io::Result<(TcpStream, JoinHandle<()>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        let Ok((mut conn, _)) = listener.accept() else {
            return;
        };
        let _ = conn.set_nodelay(true);
        // Blocking reads: the endpoint's only wake-up signals are frames
        // and the committer closing the link, both of which unblock read.
        if handshake(&mut conn).is_err() {
            return;
        }
        endpoint_loop(&mut conn, &grid, &be);
    });
    let mut link = TcpStream::connect(addr)?;
    link.set_nodelay(true)?;
    link.set_read_timeout(Some(Duration::from_secs(10)))?;
    if let Err(e) = handshake(&mut link) {
        let _ = handle.join();
        return Err(e);
    }
    Ok((link, handle))
}

fn endpoint_loop(conn: &mut TcpStream, grid: &DataGrid, be: &JnvmBackend) {
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 64 * 1024];
    loop {
        let mut consumed = 0;
        loop {
            let (req, n) = match parse_frame(&buf[consumed..]) {
                ParseOutcome::Incomplete => break,
                ParseOutcome::Malformed(_) => return,
                ParseOutcome::Frame(req, n) => (req, n),
            };
            consumed += n;
            let Request::ReplApply { seq, ops } = req else {
                // Only replication traffic belongs on this link.
                return;
            };
            match catch_crash(|| commit_writes(grid, be, &ops)) {
                Ok(_) => {
                    // The group is durable on the backup's device: ack it.
                    if conn.write_all(&encode_reply(&Reply::ReplAck(seq))).is_err() {
                        return;
                    }
                }
                // Injected crash on the backup's device: never ack again,
                // never touch the frozen device again. The closed link is
                // the committer's degrade signal.
                Err(_) => return,
            }
        }
        buf.drain(..consumed);
        match conn.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}
