//! A tiny `--key value` flag parser for the server binaries (same shape as
//! the one the bench harnesses use; kept local to avoid a dependency cycle
//! with `jnvm-bench`, which links this crate for its scaling bench).

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Default, Clone)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments. Accepts `--key value` and
    /// `--key=value`; bare flags get the value `"true"`.
    pub fn parse() -> Args {
        Args::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (tests).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut flags = HashMap::new();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                continue;
            };
            if let Some((k, v)) = key.split_once('=') {
                flags.insert(k.to_string(), v.to_string());
            } else if it.peek().is_some_and(|n| !n.starts_with("--")) {
                flags.insert(key.to_string(), it.next().expect("peeked"));
            } else {
                flags.insert(key.to_string(), "true".to_string());
            }
        }
        Args { flags }
    }

    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// Typed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Boolean flag (present or `--key true`).
    pub fn has(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }
}
