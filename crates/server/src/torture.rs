//! Kill-during-traffic: inject a crash point while live loadgen
//! connections drive the server, then reopen the pool(s), run recovery,
//! and hold the server to its word — **every `Ok`-acked write is present,
//! every record is untorn**.
//!
//! ## Shard-aware killing
//!
//! The server runs over `pool_shards` independent devices. The crash is
//! armed on **one** shard's device (`crash_shard`); when it fires, that
//! shard's committer unwinds and the shard goes dead, while the other
//! shards keep accepting and committing writes — the failure-isolation
//! contract of the sharded engine. Verification therefore also checks, at
//! early crash points, that acks kept flowing *after* the first error
//! reply ([`KillReport::acked_after_first_error`]).
//!
//! ## The allowed-states window
//!
//! Traffic is deterministic per `(connection, op index)` and replies come
//! back in request order, so after the run each key has
//!
//! * a known op sequence `o_1 .. o_m` (SET, then maybe SETF or DEL), and
//! * a known *acked prefix*: the first `a` of those ops were answered
//!   `Ok`. (All of one key's ops route to one shard, and a dead shard
//!   stays dead, so per key nothing is acked after the first failure —
//!   even though the *connection* keeps going and other shards keep
//!   acking.)
//!
//! Writes commit in per-key order (same shard ⇒ same queue order ⇒
//! later group), so the recovered image must equal the state after some
//! prefix `o_1 .. o_j` with `a ≤ j ≤ m` — acked ops are a floor, unacked
//! ones may or may not have reached their durability point, and any
//! mixture of two states (a half-applied SETF, a torn record) matches no
//! prefix and fails the check. Keys on non-crashed shards get the same
//! check; their floor is simply "everything acked", which is everything
//! that completed.

use std::sync::Arc;

use jnvm::RecoveryOptions;
use jnvm_kvstore::{GridConfig, Record, ShardedKv};
use jnvm_pmem::{silence_crash_panics, FaultPlan, Pmem, PmemConfig};

use crate::loadgen::{key_for, run_loadgen, value_for, LoadReport, LoadgenConfig, OpOutcome};
use crate::server::{Server, ServerConfig, ServerStats, ShardHandle};

/// Experiment shape.
#[derive(Debug, Clone, Copy)]
pub struct TortureConfig {
    /// Traffic to run while the crash is armed.
    pub load: LoadgenConfig,
    /// Per-pool backend map shards (in-pool sharding; orthogonal to pool
    /// sharding).
    pub shards: usize,
    /// Independent pool shards (devices), each with its own committer.
    pub pool_shards: usize,
    /// Which shard's device the crash is armed on.
    pub crash_shard: usize,
    /// Simulated pool size in bytes — per shard.
    pub pool_bytes: u64,
    /// Worker threads for the post-kill recovery pass (`1` is the
    /// sequential oracle; the reopened heap is identical either way —
    /// see `tests/recovery_equivalence.rs` and `tests/sharded_recovery.rs`).
    pub recovery_threads: usize,
    /// Server tunables.
    pub server: ServerConfig,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            load: LoadgenConfig::default(),
            shards: 16,
            pool_shards: 1,
            crash_shard: 0,
            pool_bytes: 64 << 20,
            recovery_threads: 1,
            server: ServerConfig::default(),
        }
    }
}

/// Result of one kill-during-traffic experiment.
#[derive(Debug, Clone, Copy)]
pub struct KillReport {
    /// Whether the armed point actually fired (points past the end of the
    /// op stream complete the traffic instead; verification still runs).
    pub injected: bool,
    /// Persistence-relevant device ops counted while armed (on the crash
    /// shard's device).
    pub ops_counted: u64,
    /// `Ok`-acked writes across connections.
    pub acked_writes: u64,
    /// `Ok` outcomes observed *after* a connection's first `Err` reply,
    /// summed over connections — nonzero means other shards kept
    /// committing while one lay dead.
    pub acked_after_first_error: u64,
    /// Keys whose recovered state was checked.
    pub keys_checked: u64,
    /// Server counters at shutdown.
    pub server: ServerStats,
}

struct Ctx {
    pmems: Vec<Arc<Pmem>>,
    kv: ShardedKv,
    server: Server,
}

fn build(cfg: &TortureConfig) -> Ctx {
    let pmems: Vec<Arc<Pmem>> = (0..cfg.pool_shards.max(1))
        .map(|_| Pmem::new(PmemConfig::crash_sim(cfg.pool_bytes)))
        .collect();
    // No volatile cache: the J-NVM backends gain nothing from one (§5.3.1)
    // and the verifier wants to read the persistent image, not a cache.
    let grid_cfg = GridConfig {
        cache_capacity: 0,
        ..GridConfig::default()
    };
    let kv = ShardedKv::create(&pmems, cfg.shards.max(1), true, grid_cfg).expect("create pools");
    let handles: Vec<ShardHandle> = kv
        .shards()
        .iter()
        .map(|s| ShardHandle {
            grid: Arc::clone(&s.grid),
            be: Arc::clone(&s.be),
            pmem: Arc::clone(&s.pmem),
        })
        .collect();
    let server = Server::start_sharded(handles, cfg.server).expect("bind server");
    Ctx { pmems, kv, server }
}

/// Count pass: run the full traffic with the crash shard's device
/// counting (never crashing) and return how many persistence-relevant ops
/// it performs — the size of that shard's crash-point space. The
/// interleaving varies run to run; sweeps over this total are
/// representative, not exact.
pub fn traffic_op_count(cfg: &TortureConfig) -> u64 {
    let ctx = build(cfg);
    let crash_dev = Arc::clone(&ctx.pmems[cfg.crash_shard]);
    crash_dev.arm_faults(FaultPlan::count());
    let _ = run_loadgen(ctx.server.addr(), &cfg.load);
    ctx.server.shutdown();
    drop(ctx.kv);
    crash_dev.disarm_faults()
}

/// One kill-during-traffic experiment: build fresh pools + server, arm a
/// crash at `point` on the crash shard's device, run the load, then
/// reopen + recover **all** shards and verify the allowed-states window
/// for every key — including keys on shards that never crashed. Returns
/// `Err` with a description on any violated invariant.
pub fn kill_during_traffic(point: u64, cfg: &TortureConfig) -> Result<KillReport, String> {
    silence_crash_panics();
    let ctx = build(cfg);
    let crash_dev = Arc::clone(&ctx.pmems[cfg.crash_shard]);
    // Armed only now: pool format and server startup are not part of the
    // crash-point space under test.
    crash_dev.arm_faults(FaultPlan::crash_at(point));
    let load = run_loadgen(ctx.server.addr(), &cfg.load);
    let stats = ctx.server.stats();
    ctx.server.shutdown();
    let injected = crash_dev.faults_frozen();
    let Ctx { pmems, kv, .. } = ctx;
    // Dropped while the crash device is still frozen: unwind destructors
    // must not repair the crash image (same sequence as faultsim's
    // torture_point).
    drop(kv);
    let ops_counted = crash_dev.disarm_faults();
    if injected {
        crash_dev.resync_cache();
    }

    let grid_cfg = GridConfig {
        cache_capacity: 0,
        ..GridConfig::default()
    };
    let (kv2, _reports) = ShardedKv::open(
        &pmems,
        true,
        grid_cfg,
        RecoveryOptions::parallel(cfg.recovery_threads.max(1)),
    )
    .map_err(|e| format!("reopen after crash at point {point}: {e}"))?;

    let keys_checked = verify_allowed_states(&load, cfg, &kv2)
        .map_err(|e| format!("point {point}: {e}"))?;
    Ok(KillReport {
        injected,
        ops_counted,
        acked_writes: load.acked_writes,
        acked_after_first_error: acked_after_first_error(&load),
        keys_checked,
        server: stats,
    })
}

/// `Ok` outcomes after each connection's first `Err`, summed. With one
/// dead shard out of several, connections keep driving the live shards,
/// so an early crash should leave this well above zero.
fn acked_after_first_error(load: &LoadReport) -> u64 {
    let mut total = 0u64;
    for conn in &load.per_conn {
        let mut seen_err = false;
        for o in &conn.outcomes {
            match o {
                OpOutcome::Err => seen_err = true,
                OpOutcome::Ok if seen_err => total += 1,
                _ => {}
            }
        }
    }
    total
}

/// The op indices touching the key created at index `i` (SET always;
/// `i%10==3` ⇒ DEL at `i+1`; `i%10==8` ⇒ SETF at `i+1`). Indices `4`,
/// `7`, `9` mod 10 are not SETs and create no key.
fn key_ops(i: usize, ops_per_conn: usize) -> Option<Vec<(usize, KeyOp)>> {
    if matches!(i % 10, 4 | 7 | 9) && i > 0 {
        return None;
    }
    let mut ops = vec![(i, KeyOp::Set)];
    if i + 1 < ops_per_conn {
        match i % 10 {
            3 => ops.push((i + 1, KeyOp::Del)),
            8 => ops.push((i + 1, KeyOp::SetF)),
            _ => {}
        }
    }
    Some(ops)
}

#[derive(Clone, Copy, PartialEq)]
enum KeyOp {
    Set,
    SetF,
    Del,
}

/// The record state after applying the first `j` ops of `key_ops(i)`.
fn state_after(
    conn: usize,
    i: usize,
    ops: &[(usize, KeyOp)],
    j: usize,
    cfg: &TortureConfig,
) -> Option<Record> {
    let mut state: Option<Record> = None;
    for (idx, op) in ops.iter().take(j) {
        match op {
            KeyOp::Set => {
                let values: Vec<Vec<u8>> = (0..cfg.load.fields.max(1))
                    .map(|f| value_for(conn, *idx, f, cfg.load.value_size))
                    .collect();
                state = Some(Record::ycsb(&key_for(conn, i), &values));
            }
            KeyOp::SetF => {
                let rec = state.as_mut().expect("SETF follows SET");
                rec.fields[0].1 = value_for(conn, *idx, 0, cfg.load.value_size);
            }
            KeyOp::Del => state = None,
        }
    }
    state
}

/// Check every key of every connection against its allowed-states window.
/// Returns the number of keys checked.
fn verify_allowed_states(
    load: &LoadReport,
    cfg: &TortureConfig,
    kv2: &ShardedKv,
) -> Result<u64, String> {
    let mut checked = 0u64;
    for conn in &load.per_conn {
        // Replies are in order: sanity-check the prefix property once per
        // connection before leaning on it. (Err replies do NOT end the
        // connection in the sharded server — only the reply stream's
        // tail may be silent.)
        let replied = conn.replied();
        if conn.outcomes[replied..]
            .iter()
            .any(|o| *o != OpOutcome::NoReply)
        {
            return Err(format!(
                "conn {}: reply after a silent gap — ordering broken",
                conn.conn
            ));
        }
        for o in &conn.outcomes[..replied] {
            if *o == OpOutcome::BadRead {
                return Err(format!(
                    "conn {}: GET observed a record that matches no acked state",
                    conn.conn
                ));
            }
        }
        for i in 0..cfg.load.ops_per_conn {
            let Some(ops) = key_ops(i, cfg.load.ops_per_conn) else {
                continue;
            };
            checked += 1;
            let key = key_for(conn.conn, i);
            // Acked floor: ops answered Ok must be applied. NotFound on
            // this workload's writes would itself be a violation (every
            // SETF/DEL target exists when issued in order). All of a
            // key's ops route to one shard and a dead shard stays dead,
            // so the first non-Ok ends the key's acked prefix for good.
            let mut acked = 0;
            for (idx, _) in &ops {
                match conn.outcomes[*idx] {
                    OpOutcome::Ok => acked += 1,
                    OpOutcome::NotFound => {
                        return Err(format!("{key}: write op {idx} unexpectedly NotFound"));
                    }
                    _ => break,
                }
            }
            let observed = kv2.read(&key);
            let allowed: Vec<Option<Record>> = (acked..=ops.len())
                .map(|j| state_after(conn.conn, i, &ops, j, cfg))
                .collect();
            if !allowed.contains(&observed) {
                let got = match &observed {
                    None => "absent".to_string(),
                    Some(r) => format!(
                        "{} fields, field0 {} B",
                        r.fields.len(),
                        r.fields.first().map_or(0, |f| f.1.len())
                    ),
                };
                return Err(format!(
                    "{key}: recovered state ({got}) matches none of the {} allowed \
                     prefixes (acked floor {acked} of {} ops) — acked write lost or \
                     record torn (shard {})",
                    allowed.len(),
                    ops.len(),
                    kv2.route(&key),
                ));
            }
        }
    }
    Ok(checked)
}
