//! Kill-during-traffic: inject a crash point while live loadgen
//! connections drive the server, then reopen the pool(s), run recovery,
//! and hold the server to its word — **every `Ok`-acked write is present,
//! every record is untorn**.
//!
//! ## Shard-aware killing
//!
//! The server runs over `pool_shards` independent devices. The crash is
//! armed on **one** shard's device (`crash_shard`); when it fires, that
//! shard's committer unwinds and the shard goes dead, while the other
//! shards keep accepting and committing writes — the failure-isolation
//! contract of the sharded engine. Verification therefore also checks, at
//! early crash points, that acks kept flowing *after* the first error
//! reply ([`KillReport::acked_after_first_error`]).
//!
//! ## Replicated killing and failover
//!
//! With `replicas = 2` every shard owns a primary and a backup stack on
//! independent devices, and the ack contract strengthens to **acked ⇒
//! durable on every live replica**. The crash is armed on one replica of
//! one shard (`crash_replica`; 0 = primary):
//!
//! * a **primary** crash makes the shard promote its backup in place and
//!   resume acking ([`KillReport::promotions`],
//!   [`KillReport::acked_after_promotion`]); verification re-opens the
//!   **surviving** replica of each shard and runs the allowed-states
//!   window there — an acked write missing from the promoted backup is
//!   exactly the bug this torture exists to catch. The crashed primary's
//!   image is then audited against the survivor: per key, the backup must
//!   be *ahead or equal* in the key's op-prefix order (groups stream to
//!   the backup before the primary's commit), and
//!   [`KillReport::divergent_keys`] counts where the two images differ.
//! * a **backup** crash degrades the shard to solo mode; nothing acked is
//!   lost (acks were always gated on the primary's durability too) and
//!   verification runs against the primaries.
//!
//! ## The allowed-states window
//!
//! Traffic is deterministic per `(connection, op index)` and replies come
//! back in request order, so after the run each key has
//!
//! * a known op sequence `o_1 .. o_m` (SET, then maybe SETF or DEL), and
//! * a known *acked floor*: the last op answered `Ok` and everything a
//!   later state would imply before it. (Writes commit in per-key order —
//!   same shard ⇒ same queue order ⇒ later group — so if `o_p` was acked,
//!   the recovered image must reflect at least `o_1 .. o_p`.)
//!
//! The recovered image must equal the state after some prefix `o_1 ..
//! o_j` with `floor ≤ j ≤ m` — acked ops are a floor, unacked ones may or
//! may not have reached their durability point, and any mixture of two
//! states (a half-applied SETF, a torn record) matches no prefix and
//! fails the check. Keys on non-crashed shards get the same check.
//! Failover adds one wrinkle: a write that *failed* into the promotion
//! window may still have applied on the backup (it was streamed before
//! the primary's crash), so a later op on the same key can legitimately
//! ack — the floor tracks the last `Ok`, not a contiguous prefix.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use jnvm::RecoveryOptions;
use jnvm_kvstore::{shard_for_key, GridConfig, Record, ShardedKv};
use jnvm_pmem::{silence_crash_panics, FaultPlan, Pmem, PmemConfig};

use crate::loadgen::{key_for, run_loadgen, value_for, LoadReport, LoadgenConfig, OpOutcome};
use crate::proto::{encode_request, handshake, Reply, Request};
use crate::server::{Server, ServerConfig, ServerStats, ShardHandle};

/// Experiment shape.
#[derive(Debug, Clone, Copy)]
pub struct TortureConfig {
    /// Traffic to run while the crash is armed.
    pub load: LoadgenConfig,
    /// Per-pool backend map shards (in-pool sharding; orthogonal to pool
    /// sharding).
    pub shards: usize,
    /// Independent pool shards (devices), each with its own committer.
    pub pool_shards: usize,
    /// Replicas per shard (1 = unreplicated, 2 = primary + backup).
    pub replicas: usize,
    /// Which shard's replica set the crash is armed on.
    pub crash_shard: usize,
    /// Which replica of that shard crashes (0 = primary, 1 = backup).
    pub crash_replica: usize,
    /// Simulated pool size in bytes — per replica.
    pub pool_bytes: u64,
    /// Worker threads for the post-kill recovery pass (`1` is the
    /// sequential oracle; the reopened heap is identical either way —
    /// see `tests/recovery_equivalence.rs` and `tests/sharded_recovery.rs`).
    pub recovery_threads: usize,
    /// Server tunables.
    pub server: ServerConfig,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            load: LoadgenConfig::default(),
            shards: 16,
            pool_shards: 1,
            replicas: 1,
            crash_shard: 0,
            crash_replica: 0,
            pool_bytes: 64 << 20,
            recovery_threads: 1,
            server: ServerConfig::default(),
        }
    }
}

/// Result of one kill-during-traffic experiment.
#[derive(Debug, Clone, Copy)]
pub struct KillReport {
    /// Whether the armed point actually fired (points past the end of the
    /// op stream complete the traffic instead; verification still runs).
    pub injected: bool,
    /// Persistence-relevant device ops counted while armed (on the crash
    /// replica's device).
    pub ops_counted: u64,
    /// `Ok`-acked writes across connections.
    pub acked_writes: u64,
    /// `Ok` outcomes observed *after* a connection's first `Err` reply,
    /// summed over connections — nonzero means service continued past the
    /// crash (other shards, or the crash shard itself after promotion).
    pub acked_after_first_error: u64,
    /// Backups promoted to primary (server counter).
    pub promotions: u64,
    /// Replicated shards running solo at shutdown (server counter).
    pub degraded_shards: u64,
    /// Writes acked by a shard that had failed over — the liveness
    /// witness of promotion (server counter).
    pub acked_after_promotion: u64,
    /// Keys whose recovered state was checked.
    pub keys_checked: u64,
    /// Keys on the crash shard whose crashed-primary image differs from
    /// the survivor's (always an *allowed* divergence — the audit fails
    /// instead if the backup is ever **behind** the primary).
    pub divergent_keys: u64,
    /// Per-key partitions the durable-linearizability checker verified.
    pub lincheck_keys: u64,
    /// History events (client ops + post-recovery observations) checked.
    pub lincheck_events: u64,
    /// Server counters at shutdown.
    pub server: ServerStats,
}

struct Ctx {
    /// `pmems[shard][replica]`; replica 0 is the primary.
    pmems: Vec<Vec<Arc<Pmem>>>,
    /// One `ShardedKv` per replica position (so `kvs[r]` owns shard `s`'s
    /// replica `r` at `kvs[r].shards()[s]`).
    kvs: Vec<ShardedKv>,
    server: Server,
}

fn grid_cfg() -> GridConfig {
    // No volatile cache: the J-NVM backends gain nothing from one (§5.3.1)
    // and the verifier wants to read the persistent image, not a cache.
    GridConfig {
        cache_capacity: 0,
        ..GridConfig::default()
    }
}

fn build(cfg: &TortureConfig) -> Ctx {
    let pool_shards = cfg.pool_shards.max(1);
    let replicas = cfg.replicas.clamp(1, 2);
    let mut kvs: Vec<ShardedKv> = Vec::with_capacity(replicas);
    let mut by_replica: Vec<Vec<Arc<Pmem>>> = Vec::with_capacity(replicas);
    for r in 0..replicas {
        let role = if r == 0 { "primary" } else { "backup" };
        let pmems: Vec<Arc<Pmem>> = (0..pool_shards)
            .map(|s| {
                Pmem::new(PmemConfig::crash_sim(cfg.pool_bytes).with_label(&format!("s{s}/{role}")))
            })
            .collect();
        // Identical shard count on every replica ⇒ identical key routing,
        // which is what lets the backup replay the primary's op stream.
        let kv =
            ShardedKv::create(&pmems, cfg.shards.max(1), true, grid_cfg()).expect("create pools");
        by_replica.push(pmems);
        kvs.push(kv);
    }
    let shard_sets: Vec<Vec<ShardHandle>> = (0..pool_shards)
        .map(|s| {
            kvs.iter()
                .map(|kv| {
                    let shard = &kv.shards()[s];
                    ShardHandle {
                        grid: Arc::clone(&shard.grid),
                        be: Arc::clone(&shard.be),
                        pmem: Arc::clone(&shard.pmem),
                    }
                })
                .collect()
        })
        .collect();
    let server = Server::start_replicated(shard_sets, cfg.server).expect("bind server");
    let pmems: Vec<Vec<Arc<Pmem>>> = (0..pool_shards)
        .map(|s| by_replica.iter().map(|r| Arc::clone(&r[s])).collect())
        .collect();
    Ctx { pmems, kvs, server }
}

/// Count pass: run the full traffic with the crash replica's device
/// counting (never crashing) and return how many persistence-relevant ops
/// it performs — the size of that device's crash-point space. The
/// interleaving varies run to run; sweeps over this total are
/// representative, not exact.
pub fn traffic_op_count(cfg: &TortureConfig) -> u64 {
    let ctx = build(cfg);
    let crash_dev = Arc::clone(&ctx.pmems[cfg.crash_shard][cfg.crash_replica.min(cfg.replicas.max(1) - 1)]);
    crash_dev.arm_faults(FaultPlan::count());
    let _ = run_loadgen(ctx.server.addr(), &cfg.load);
    ctx.server.shutdown();
    drop(ctx.kvs);
    crash_dev.disarm_faults()
}

/// One kill-during-traffic experiment: build fresh pools + server, arm a
/// crash at `point` on the chosen replica's device, run the load, then
/// reopen + recover the **surviving** replica of every shard and verify
/// the allowed-states window for every key — including keys on shards
/// that never crashed. After a primary kill the crashed image is also
/// audited for divergence against the survivor. Returns `Err` with a
/// description on any violated invariant.
pub fn kill_during_traffic(point: u64, cfg: &TortureConfig) -> Result<KillReport, String> {
    silence_crash_panics();
    let replicas = cfg.replicas.clamp(1, 2);
    let crash_replica = cfg.crash_replica.min(replicas - 1);
    let ctx = build(cfg);
    let crash_dev = Arc::clone(&ctx.pmems[cfg.crash_shard][crash_replica]);
    // Armed only now: pool format and server startup are not part of the
    // crash-point space under test.
    crash_dev.arm_faults(FaultPlan::crash_at(point));
    let mut load = run_loadgen(ctx.server.addr(), &cfg.load);
    let stats = ctx.server.stats();
    ctx.server.shutdown();
    let injected = crash_dev.faults_frozen();
    let Ctx { pmems, kvs, .. } = ctx;
    // Dropped while the crash device is still frozen: unwind destructors
    // must not repair the crash image (same sequence as faultsim's
    // torture_point).
    drop(kvs);
    let ops_counted = crash_dev.disarm_faults();
    if injected {
        crash_dev.resync_cache();
    }

    // The survivor view: after a primary kill the crash shard's backup is
    // what promotion left serving; every other shard (and every shard on
    // a backup kill) survives on its primary.
    let promoted = injected && replicas > 1 && crash_replica == 0;
    let survivors: Vec<Arc<Pmem>> = pmems
        .iter()
        .enumerate()
        .map(|(s, reps)| {
            let r = if promoted && s == cfg.crash_shard { 1 } else { 0 };
            Arc::clone(&reps[r])
        })
        .collect();
    let (kv2, _reports) = ShardedKv::open(
        &survivors,
        true,
        grid_cfg(),
        RecoveryOptions::parallel(cfg.recovery_threads.max(1)),
    )
    .map_err(|e| format!("reopen survivors after crash at point {point}: {e}"))?;

    let (keys_checked, crash_shard_keys) = verify_allowed_states(&load, cfg, &kv2)
        .map_err(|e| format!("point {point}: {e}"))?;
    let lincheck = lincheck_history(&mut load, &kv2)
        .map_err(|e| format!("point {point}: {e}"))?;
    drop(kv2);

    // Divergence audit of the crashed primary against the survivor it
    // handed over to.
    let mut divergent = 0u64;
    if promoted {
        let crashed = vec![Arc::clone(&pmems[cfg.crash_shard][0])];
        let (pkv, _r) = ShardedKv::open(
            &crashed,
            true,
            grid_cfg(),
            RecoveryOptions::parallel(cfg.recovery_threads.max(1)),
        )
        .map_err(|e| format!("reopen crashed primary after point {point}: {e}"))?;
        for k in &crash_shard_keys {
            let p_state = pkv.read(&k.key);
            let candidates: Vec<Option<Record>> = (0..=k.ops.len())
                .map(|j| state_after(k.conn, k.i, &k.ops, j, cfg))
                .collect();
            let j_p: Vec<usize> = (0..candidates.len())
                .filter(|j| candidates[*j] == p_state)
                .collect();
            let j_b: Vec<usize> = (0..candidates.len())
                .filter(|j| candidates[*j] == k.survivor)
                .collect();
            let (Some(&p_min), Some(&b_max)) = (j_p.first(), j_b.last()) else {
                return Err(format!(
                    "point {point}: {}: crashed-primary state matches no op prefix \
                     (torn image survived recovery)",
                    k.key
                ));
            };
            if p_min > b_max {
                return Err(format!(
                    "point {point}: {}: promoted backup (prefix ≤ {b_max}) is BEHIND the \
                     crashed primary (prefix ≥ {p_min}) — groups must reach the backup first",
                    k.key
                ));
            }
            if p_state != k.survivor {
                divergent += 1;
            }
        }
    }

    Ok(KillReport {
        injected,
        ops_counted,
        acked_writes: load.acked_writes,
        acked_after_first_error: acked_after_first_error(&load),
        promotions: stats.promotions,
        degraded_shards: stats.degraded_shards,
        acked_after_promotion: stats.acked_after_promotion,
        keys_checked,
        divergent_keys: divergent,
        lincheck_keys: lincheck.keys as u64,
        lincheck_events: lincheck.events as u64,
        server: stats,
    })
}

/// Close the captured history over the recovered image and check durable
/// linearizability: mark the crash barrier, append one post-recovery
/// observation per touched key (read from the reopened survivors), then
/// run the per-key Wing–Gong search. An acked-but-lost write, a dirty
/// read of a never-durable value, or any ordering inversion comes back as
/// an `Err` carrying the minimized witness.
fn lincheck_history(
    load: &mut LoadReport,
    kv2: &ShardedKv,
) -> Result<jnvm_lincheck::CheckReport, String> {
    load.history.mark_crash();
    let keys: Vec<String> = load.history.keys().iter().map(|k| k.to_string()).collect();
    for key in keys {
        let state = kv2
            .read(&key)
            .map(|rec| rec.fields.into_iter().map(|(_, v)| v).collect());
        load.history.observe(&key, state);
    }
    jnvm_lincheck::check(&load.history)
        .map_err(|v| format!("durable-linearizability violation: {v}"))
}

/// Report of one read-your-writes probe across a primary failover.
#[derive(Debug, Clone, Copy)]
pub struct ProbeReport {
    /// Whether the armed crash actually fired.
    pub injected: bool,
    /// Backups promoted to primary (server counter).
    pub promotions: u64,
    /// Writes acked by a shard that had failed over (server counter).
    pub acked_after_promotion: u64,
    /// The pool shard the probe key routes to (the crashed one).
    pub probe_shard: usize,
    /// Probe SETs acked by the promoted shard.
    pub probe_sets_acked: u64,
}

/// Read-your-writes across promotion: crash the primary of `crash_shard`
/// mid-traffic, wait for the load to drain (the shard promotes its backup
/// in place), then — against the **still-running** server — SET a key
/// routed to the promoted shard twice and GET it back. The GET is issued
/// after `acked_after_promotion` went nonzero for that key's shard, so it
/// must observe the *last* acked SET; anything else is a stale read on
/// the survivor. Errors describe the violated expectation.
pub fn promotion_read_probe(point: u64, cfg: &TortureConfig) -> Result<ProbeReport, String> {
    silence_crash_panics();
    if cfg.replicas.clamp(1, 2) < 2 || cfg.crash_replica != 0 {
        return Err("the probe needs replicas=2 and a primary kill".into());
    }
    let ctx = build(cfg);
    let crash_dev = Arc::clone(&ctx.pmems[cfg.crash_shard][0]);
    crash_dev.arm_faults(FaultPlan::crash_at(point));
    let _load = run_loadgen(ctx.server.addr(), &cfg.load);
    let injected = crash_dev.faults_frozen();
    let stats = ctx.server.stats();
    let mut report = ProbeReport {
        injected,
        promotions: stats.promotions,
        acked_after_promotion: stats.acked_after_promotion,
        probe_shard: cfg.crash_shard,
        probe_sets_acked: 0,
    };
    if injected && stats.promotions > 0 {
        let pool_shards = cfg.pool_shards.max(1);
        let key = (0u32..)
            .map(|n| format!("promo-probe-{n:04}"))
            .find(|k| shard_for_key(k, pool_shards) == cfg.crash_shard)
            .expect("some probe key routes to the crash shard");
        let vals = |tag: u8| vec![vec![tag; 8]];
        let mut stream =
            TcpStream::connect(ctx.server.addr()).map_err(|e| format!("probe connect: {e}"))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        handshake(&mut stream).map_err(|e| format!("probe handshake: {e}"))?;
        let mut rbuf: Vec<u8> = Vec::new();
        let mut roundtrip = |stream: &mut TcpStream, req: &Request| -> Result<Reply, String> {
            stream
                .write_all(&encode_request(req))
                .map_err(|e| format!("probe send: {e}"))?;
            match crate::loadgen::read_reply(stream, &mut rbuf) {
                Ok(Some(reply)) => Ok(reply),
                Ok(None) => Err("probe: promoted shard went silent".into()),
                Err(e) => Err(format!("probe reply stream: {e}")),
            }
        };
        for tag in [1u8, 2u8] {
            match roundtrip(&mut stream, &Request::Set(Record::ycsb(&key, &vals(tag))))? {
                Reply::Ok => report.probe_sets_acked += 1,
                other => {
                    return Err(format!(
                        "probe SET #{tag} on promoted shard {} answered {other:?}",
                        cfg.crash_shard
                    ))
                }
            }
        }
        let expected = Record::ycsb(&key, &vals(2));
        match roundtrip(&mut stream, &Request::Get(key.clone()))? {
            Reply::Value(payload) => {
                if jnvm_kvstore::decode_record(&payload).as_ref() != Some(&expected) {
                    return Err(format!(
                        "probe GET on {key}: read-your-writes broken across promotion \
                         (did not observe the last acked SET)"
                    ));
                }
            }
            other => {
                return Err(format!(
                    "probe GET on {key} answered {other:?} after two acked SETs"
                ))
            }
        }
    }
    ctx.server.shutdown();
    let Ctx { kvs, .. } = ctx;
    drop(kvs);
    crash_dev.disarm_faults();
    if injected {
        crash_dev.resync_cache();
    }
    Ok(report)
}

/// `Ok` outcomes after each connection's first `Err`, summed. With one
/// dead shard out of several — or a shard failing over to its backup —
/// connections keep getting acks, so an early crash should leave this
/// well above zero.
fn acked_after_first_error(load: &LoadReport) -> u64 {
    let mut total = 0u64;
    for conn in &load.per_conn {
        let mut seen_err = false;
        for o in &conn.outcomes {
            match o {
                OpOutcome::Err => seen_err = true,
                OpOutcome::Ok if seen_err => total += 1,
                _ => {}
            }
        }
    }
    total
}

/// The op indices touching the key created at index `i` (SET always;
/// `i%10==3` ⇒ DEL at `i+1`; `i%10==8` ⇒ SETF at `i+1`). Indices `4`,
/// `7`, `9` mod 10 are not SETs and create no key.
fn key_ops(i: usize, ops_per_conn: usize) -> Option<Vec<(usize, KeyOp)>> {
    if matches!(i % 10, 4 | 7 | 9) && i > 0 {
        return None;
    }
    let mut ops = vec![(i, KeyOp::Set)];
    if i + 1 < ops_per_conn {
        match i % 10 {
            3 => ops.push((i + 1, KeyOp::Del)),
            8 => ops.push((i + 1, KeyOp::SetF)),
            _ => {}
        }
    }
    Some(ops)
}

#[derive(Clone, Copy, PartialEq)]
enum KeyOp {
    Set,
    SetF,
    Del,
}

/// One crash-shard key's identity and survivor-side recovered state,
/// retained for the post-verification divergence audit.
struct AuditKey {
    key: String,
    conn: usize,
    i: usize,
    ops: Vec<(usize, KeyOp)>,
    survivor: Option<Record>,
}

/// The record state after applying the first `j` ops of `key_ops(i)`.
fn state_after(
    conn: usize,
    i: usize,
    ops: &[(usize, KeyOp)],
    j: usize,
    cfg: &TortureConfig,
) -> Option<Record> {
    let mut state: Option<Record> = None;
    for (idx, op) in ops.iter().take(j) {
        match op {
            KeyOp::Set => {
                let values: Vec<Vec<u8>> = (0..cfg.load.fields.max(1))
                    .map(|f| value_for(cfg.load.seed, conn, *idx, f, cfg.load.value_size))
                    .collect();
                state = Some(Record::ycsb(&key_for(cfg.load.seed, conn, i), &values));
            }
            KeyOp::SetF => {
                let rec = state.as_mut().expect("SETF follows SET");
                rec.fields[0].1 = value_for(cfg.load.seed, conn, *idx, 0, cfg.load.value_size);
            }
            KeyOp::Del => state = None,
        }
    }
    state
}

/// Check every key of every connection against its allowed-states window.
/// Returns the number of keys checked and the crash-shard keys with their
/// survivor-side states (for the divergence audit).
fn verify_allowed_states(
    load: &LoadReport,
    cfg: &TortureConfig,
    kv2: &ShardedKv,
) -> Result<(u64, Vec<AuditKey>), String> {
    let mut checked = 0u64;
    let mut audit: Vec<AuditKey> = Vec::new();
    for conn in &load.per_conn {
        // Replies are in order: sanity-check the prefix property once per
        // connection before leaning on it. (Err replies do NOT end the
        // connection in the sharded server — only the reply stream's
        // tail may be silent.)
        let replied = conn.replied();
        if conn.outcomes[replied..]
            .iter()
            .any(|o| *o != OpOutcome::NoReply)
        {
            return Err(format!(
                "conn {}: reply after a silent gap — ordering broken",
                conn.conn
            ));
        }
        for o in &conn.outcomes[..replied] {
            if *o == OpOutcome::BadRead {
                return Err(format!(
                    "conn {}: GET observed a record that matches no acked state",
                    conn.conn
                ));
            }
        }
        for i in 0..cfg.load.ops_per_conn {
            let Some(ops) = key_ops(i, cfg.load.ops_per_conn) else {
                continue;
            };
            checked += 1;
            let key = key_for(cfg.load.seed, conn.conn, i);
            // Acked floor: an op answered Ok is durable, and writes apply
            // in per-key order, so the image must reflect at least every
            // op up to the LAST acked one. (With failover, an op that
            // failed into the promotion window may have applied on the
            // backup anyway — so a later op on the same key can
            // legitimately ack, and the floor is the last Ok, not a
            // contiguous prefix.) NotFound on a follow-up write is
            // legitimate only when the key's SET was itself not acked.
            let mut floor = 0;
            for (pos, (idx, _)) in ops.iter().enumerate() {
                match conn.outcomes[*idx] {
                    OpOutcome::Ok => floor = pos + 1,
                    OpOutcome::NotFound
                        if pos > 0 && conn.outcomes[ops[0].0] == OpOutcome::Ok =>
                    {
                        return Err(format!(
                            "{key}: write op {idx} answered NotFound although the \
                             key's SET was acked"
                        ));
                    }
                    _ => {}
                }
            }
            let observed = kv2.read(&key);
            let allowed: Vec<Option<Record>> = (floor..=ops.len())
                .map(|j| state_after(conn.conn, i, &ops, j, cfg))
                .collect();
            if !allowed.contains(&observed) {
                let got = match &observed {
                    None => "absent".to_string(),
                    Some(r) => format!(
                        "{} fields, field0 {} B",
                        r.fields.len(),
                        r.fields.first().map_or(0, |f| f.1.len())
                    ),
                };
                return Err(format!(
                    "{key}: recovered state ({got}) matches none of the {} allowed \
                     prefixes (acked floor {floor} of {} ops) — acked write lost or \
                     record torn (shard {})",
                    allowed.len(),
                    ops.len(),
                    kv2.route(&key),
                ));
            }
            if kv2.route(&key) == cfg.crash_shard {
                audit.push(AuditKey {
                    key,
                    conn: conn.conn,
                    i,
                    ops,
                    survivor: observed,
                });
            }
        }
    }
    Ok((checked, audit))
}
