//! The wire protocol: length-prefixed binary frames, RESP-in-spirit.
//!
//! ```text
//! request  = [magic u8 = 0x4e][op u8][len u32 LE][body: len bytes]
//! reply    = [status u8][len u32 LE][payload: len bytes]
//! ```
//!
//! | op | name | body |
//! |---|---|---|
//! | 1 | GET | key bytes |
//! | 2 | SET | [`encode_record`] bytes |
//! | 3 | SETF | `[field u32][keylen u32][key][value...]` |
//! | 4 | DEL | key bytes |
//! | 5 | LEN | empty |
//! | 6 | STATS | empty |
//! | 7 | SHUTDOWN | empty |
//!
//! Two malformation tiers, exercised by the robustness tests:
//!
//! * **frame-level** (bad magic, unknown op, oversized length): the stream
//!   is unparseable from here on — [`ParseOutcome::Malformed`], the server
//!   closes the connection;
//! * **body-level** (undecodable record, oversized key/value/field-count):
//!   the frame boundary is still sound — [`Request::Invalid`], the server
//!   replies [`Reply::Err`] and keeps the connection.

use jnvm_kvstore::{decode_record, encode_record, Record};

/// First byte of every request frame.
pub const MAGIC: u8 = 0x4e;

/// Hard cap on a frame body; larger lengths are treated as an attack (a
/// 4 GiB length word must not cause a 4 GiB buffer).
pub const MAX_FRAME: usize = 1 << 20;
/// Maximum key bytes.
pub const MAX_KEY: usize = 4 << 10;
/// Maximum single-value bytes.
pub const MAX_VALUE: usize = 64 << 10;
/// Maximum fields per record.
pub const MAX_FIELDS: usize = 64;

const OP_GET: u8 = 1;
const OP_SET: u8 = 2;
const OP_SETF: u8 = 3;
const OP_DEL: u8 = 4;
const OP_LEN: u8 = 5;
const OP_STATS: u8 = 6;
const OP_SHUTDOWN: u8 = 7;

const ST_OK: u8 = 0;
const ST_VALUE: u8 = 1;
const ST_NOT_FOUND: u8 = 2;
const ST_ERR: u8 = 3;

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read a record.
    Get(String),
    /// Insert/replace a record.
    Set(Record),
    /// Replace one positional field.
    SetField {
        /// Record key.
        key: String,
        /// Positional field index.
        field: usize,
        /// New field bytes.
        value: Vec<u8>,
    },
    /// Remove a record.
    Del(String),
    /// Record count.
    Len,
    /// Server/device/grid counters as text.
    Stats,
    /// Orderly shutdown.
    Shutdown,
    /// Frame was delimited correctly but its body violates a limit or does
    /// not decode; the server answers [`Reply::Err`] and carries on.
    Invalid(&'static str),
}

/// One step of the pipelined frame parser.
#[derive(Debug)]
pub enum ParseOutcome {
    /// Not enough buffered bytes for a whole frame yet.
    Incomplete,
    /// A frame: the request and how many buffer bytes it consumed.
    Frame(Request, usize),
    /// The stream is unparseable; the connection must be dropped.
    Malformed(&'static str),
}

fn utf8_key(bytes: &[u8]) -> Result<String, &'static str> {
    if bytes.len() > MAX_KEY {
        return Err("key too long");
    }
    String::from_utf8(bytes.to_vec()).map_err(|_| "key not utf-8")
}

/// Try to parse one frame from the front of `buf`.
pub fn parse_frame(buf: &[u8]) -> ParseOutcome {
    if buf.is_empty() {
        return ParseOutcome::Incomplete;
    }
    if buf[0] != MAGIC {
        return ParseOutcome::Malformed("bad magic");
    }
    if buf.len() < 6 {
        return ParseOutcome::Incomplete;
    }
    let op = buf[1];
    let len = u32::from_le_bytes(buf[2..6].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return ParseOutcome::Malformed("frame too large");
    }
    if buf.len() < 6 + len {
        return ParseOutcome::Incomplete;
    }
    let body = &buf[6..6 + len];
    let consumed = 6 + len;
    let req = match op {
        OP_GET | OP_DEL => match utf8_key(body) {
            Ok(key) if op == OP_GET => Request::Get(key),
            Ok(key) => Request::Del(key),
            Err(e) => Request::Invalid(e),
        },
        OP_SET => match decode_record(body) {
            Some(rec) if rec.key.len() > MAX_KEY => Request::Invalid("key too long"),
            Some(rec) if rec.fields.len() > MAX_FIELDS => Request::Invalid("too many fields"),
            Some(rec) if rec.fields.iter().any(|(_, v)| v.len() > MAX_VALUE) => {
                Request::Invalid("value too large")
            }
            Some(rec) => Request::Set(rec),
            None => Request::Invalid("record does not decode"),
        },
        OP_SETF => parse_setf(body),
        OP_LEN => Request::Len,
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        _ => return ParseOutcome::Malformed("unknown op"),
    };
    ParseOutcome::Frame(req, consumed)
}

fn parse_setf(body: &[u8]) -> Request {
    if body.len() < 8 {
        return Request::Invalid("setf body truncated");
    }
    let field = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let keylen = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")) as usize;
    if keylen > body.len() - 8 {
        return Request::Invalid("setf key overruns body");
    }
    let key = match utf8_key(&body[8..8 + keylen]) {
        Ok(k) => k,
        Err(e) => return Request::Invalid(e),
    };
    let value = &body[8 + keylen..];
    if field >= MAX_FIELDS {
        return Request::Invalid("field index too large");
    }
    if value.len() > MAX_VALUE {
        return Request::Invalid("value too large");
    }
    Request::SetField {
        key,
        field,
        value: value.to_vec(),
    }
}

/// Encode a request frame (client side).
///
/// # Panics
///
/// Panics on [`Request::Invalid`] — it exists only as a parse result.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let (op, body): (u8, Vec<u8>) = match req {
        Request::Get(key) => (OP_GET, key.as_bytes().to_vec()),
        Request::Set(rec) => (OP_SET, encode_record(rec)),
        Request::SetField { key, field, value } => {
            let mut b = Vec::with_capacity(8 + key.len() + value.len());
            b.extend_from_slice(&(*field as u32).to_le_bytes());
            b.extend_from_slice(&(key.len() as u32).to_le_bytes());
            b.extend_from_slice(key.as_bytes());
            b.extend_from_slice(value);
            (OP_SETF, b)
        }
        Request::Del(key) => (OP_DEL, key.as_bytes().to_vec()),
        Request::Len => (OP_LEN, Vec::new()),
        Request::Stats => (OP_STATS, Vec::new()),
        Request::Shutdown => (OP_SHUTDOWN, Vec::new()),
        Request::Invalid(m) => panic!("cannot encode Invalid({m})"),
    };
    let mut out = Vec::with_capacity(6 + body.len());
    out.push(MAGIC);
    out.push(op);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// A decoded reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Write/shutdown acknowledged. For writes this means **durable**.
    Ok,
    /// GET/LEN/STATS payload.
    Value(Vec<u8>),
    /// GET/SETF/DEL target absent.
    NotFound,
    /// Request failed; the payload is a human-readable reason.
    Err(String),
}

/// Encode a reply frame (server side).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let (status, payload): (u8, &[u8]) = match reply {
        Reply::Ok => (ST_OK, &[]),
        Reply::Value(v) => (ST_VALUE, v),
        Reply::NotFound => (ST_NOT_FOUND, &[]),
        Reply::Err(m) => (ST_ERR, m.as_bytes()),
    };
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(status);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a reply stream stopped parsing. A server can feed a client
/// anything — torn frames after a crash, a proxy's HTML, line noise — so
/// the client-side parser reports *typed* errors the caller can match on
/// and fold into per-op outcomes, instead of a bare string begging for
/// `.unwrap()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The length word exceeds [`MAX_FRAME`]; the stream is hostile or
    /// desynchronized, nothing after this point can be framed.
    ReplyTooLarge {
        /// The claimed payload length.
        len: usize,
    },
    /// The status byte is none of the known reply codes.
    UnknownStatus(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::ReplyTooLarge { len } => {
                write!(f, "reply too large ({len} B > {MAX_FRAME} B cap)")
            }
            ProtoError::UnknownStatus(s) => write!(f, "unknown reply status {s:#04x}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Try to parse one reply from the front of `buf` (client side). Returns
/// the reply and bytes consumed, `Ok(None)` when incomplete, `Err` when
/// the stream is unparseable from here on.
pub fn parse_reply(buf: &[u8]) -> Result<Option<(Reply, usize)>, ProtoError> {
    if buf.len() < 5 {
        return Ok(None);
    }
    // Status first: on a desynchronized stream the next four bytes are
    // not a length, and "unknown status" is the diagnosis that says so.
    let status = buf[0];
    if !matches!(status, ST_OK | ST_VALUE | ST_NOT_FOUND | ST_ERR) {
        return Err(ProtoError::UnknownStatus(status));
    }
    let len = u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::ReplyTooLarge { len });
    }
    if buf.len() < 5 + len {
        return Ok(None);
    }
    let payload = buf[5..5 + len].to_vec();
    let reply = match status {
        ST_OK => Reply::Ok,
        ST_VALUE => Reply::Value(payload),
        ST_NOT_FOUND => Reply::NotFound,
        ST_ERR => Reply::Err(String::from_utf8_lossy(&payload).into_owned()),
        _ => unreachable!("status validated above"),
    };
    Ok(Some((reply, 5 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(req: &Request) -> Request {
        match parse_frame(&encode_request(req)) {
            ParseOutcome::Frame(r, n) => {
                assert_eq!(n, encode_request(req).len());
                r
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Get("k".into()),
            Request::Set(Record::ycsb("k", &[b"v".to_vec(), vec![]])),
            Request::SetField {
                key: "k".into(),
                field: 3,
                value: b"xyz".to_vec(),
            },
            Request::Del("k".into()),
            Request::Len,
            Request::Stats,
            Request::Shutdown,
        ];
        for r in &reqs {
            assert_eq!(&frame(r), r);
        }
    }

    #[test]
    fn reply_round_trips() {
        for r in [
            Reply::Ok,
            Reply::Value(b"abc".to_vec()),
            Reply::NotFound,
            Reply::Err("nope".into()),
        ] {
            let bytes = encode_reply(&r);
            let (back, n) = parse_reply(&bytes).unwrap().unwrap();
            assert_eq!(back, r);
            assert_eq!(n, bytes.len());
        }
    }

    #[test]
    fn garbage_replies_are_typed_errors_not_panics() {
        // A STATS request answered with line noise: the status byte is no
        // reply code. Pre-ProtoError this path only surfaced as a
        // `&'static str` that call sites unwrapped.
        let garbage = b"HTTP/1.1 200 OK\r\n\r\nuptime=9";
        assert_eq!(
            parse_reply(garbage),
            Err(ProtoError::UnknownStatus(b'H'))
        );
        // A plausible status byte but an absurd length word: typed, and
        // carries the claimed length for the caller's diagnostics.
        let mut huge = vec![ST_VALUE];
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            parse_reply(&huge),
            Err(ProtoError::ReplyTooLarge {
                len: u32::MAX as usize
            })
        );
        // Both render a human-readable reason.
        assert!(format!("{}", ProtoError::UnknownStatus(b'H')).contains("0x48"));
        assert!(
            format!("{}", ProtoError::ReplyTooLarge { len: 7 }).contains("7 B")
        );
        // Truncated-but-sane prefixes stay Incomplete, never errors.
        for cut in 0..5 {
            assert_eq!(parse_reply(&huge[..cut]), Ok(None));
        }
    }

    #[test]
    fn pipelined_frames_parse_in_sequence() {
        let mut buf = encode_request(&Request::Get("a".into()));
        buf.extend(encode_request(&Request::Del("b".into())));
        let ParseOutcome::Frame(r1, n1) = parse_frame(&buf) else {
            panic!()
        };
        assert_eq!(r1, Request::Get("a".into()));
        let ParseOutcome::Frame(r2, n2) = parse_frame(&buf[n1..]) else {
            panic!()
        };
        assert_eq!(r2, Request::Del("b".into()));
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn truncation_is_incomplete_not_malformed() {
        let bytes = encode_request(&Request::Set(Record::ycsb("k", &[vec![9u8; 40]])));
        for cut in 0..bytes.len() {
            match parse_frame(&bytes[..cut]) {
                ParseOutcome::Incomplete => {}
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn frame_level_garbage_is_malformed() {
        assert!(matches!(
            parse_frame(b"\x00rubbish"),
            ParseOutcome::Malformed("bad magic")
        ));
        assert!(matches!(
            parse_frame(&[MAGIC, 99, 0, 0, 0, 0]),
            ParseOutcome::Malformed("unknown op")
        ));
        let mut huge = vec![MAGIC, OP_GET];
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            parse_frame(&huge),
            ParseOutcome::Malformed("frame too large")
        ));
    }

    #[test]
    fn body_level_violations_are_invalid_not_malformed() {
        // Oversized value inside a well-delimited SET frame.
        let rec = Record::ycsb("k", &[vec![0u8; MAX_VALUE + 1]]);
        let bytes = encode_request(&Request::Set(rec));
        assert!(matches!(
            parse_frame(&bytes),
            ParseOutcome::Frame(Request::Invalid("value too large"), _)
        ));
        // SETF key length overrunning the body.
        let mut body = Vec::new();
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&1000u32.to_le_bytes());
        body.extend_from_slice(b"shortkey");
        let mut f = vec![MAGIC, OP_SETF];
        f.extend_from_slice(&(body.len() as u32).to_le_bytes());
        f.extend_from_slice(&body);
        assert!(matches!(
            parse_frame(&f),
            ParseOutcome::Frame(Request::Invalid("setf key overruns body"), _)
        ));
    }
}
