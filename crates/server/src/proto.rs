//! The wire protocol: length-prefixed binary frames, RESP-in-spirit.
//!
//! ```text
//! request  = [magic u8 = 0x4e][op u8][len u32 LE][body: len bytes]
//! reply    = [status u8][len u32 LE][payload: len bytes]
//! ```
//!
//! | op | name | body |
//! |---|---|---|
//! | 1 | GET | key bytes |
//! | 2 | SET | [`encode_record`] bytes |
//! | 3 | SETF | `[field u32][keylen u32][key][value...]` |
//! | 4 | DEL | key bytes |
//! | 5 | LEN | empty |
//! | 6 | STATS | empty |
//! | 7 | SHUTDOWN | empty |
//! | 8 | REPL_APPLY | `[seq u64][count u32][tagged ops...]` (replication link) |
//! | 9 | TRACE | empty |
//! | 10 | METRICS | empty |
//!
//! Since protocol version 2 every connection opens with a two-byte
//! **hello** — `[MAGIC, PROTO_VERSION]` — sent by each side before any
//! frame. A peer speaking another version fails fast with a typed
//! [`ProtoError::VersionMismatch`] instead of desynchronizing on the
//! first frame whose opcode it does not know (the REPL frames are
//! exactly such an extension: a v1 peer would read `REPL_APPLY` as
//! "unknown op" at best, or misframe the stream at worst).
//!
//! Two malformation tiers, exercised by the robustness tests:
//!
//! * **frame-level** (bad magic, unknown op, oversized length): the stream
//!   is unparseable from here on — [`ParseOutcome::Malformed`], the server
//!   closes the connection;
//! * **body-level** (undecodable record, oversized key/value/field-count):
//!   the frame boundary is still sound — [`Request::Invalid`], the server
//!   replies [`Reply::Err`] and keeps the connection.

use jnvm_kvstore::{decode_record, encode_record, Record, WriteOp};

/// First byte of every request frame.
pub const MAGIC: u8 = 0x4e;

/// Wire-protocol version, exchanged in the connect-time hello. Bumped to
/// 2 when the REPL frames were added, to 3 for the observability frames
/// (`TRACE`/`METRICS`).
pub const PROTO_VERSION: u8 = 3;

/// Hard cap on a frame body; larger lengths are treated as an attack (a
/// 4 GiB length word must not cause a 4 GiB buffer).
pub const MAX_FRAME: usize = 1 << 20;
/// Maximum key bytes.
pub const MAX_KEY: usize = 4 << 10;
/// Maximum single-value bytes.
pub const MAX_VALUE: usize = 64 << 10;
/// Maximum fields per record.
pub const MAX_FIELDS: usize = 64;

const OP_GET: u8 = 1;
const OP_SET: u8 = 2;
const OP_SETF: u8 = 3;
const OP_DEL: u8 = 4;
const OP_LEN: u8 = 5;
const OP_STATS: u8 = 6;
const OP_SHUTDOWN: u8 = 7;
const OP_REPL_APPLY: u8 = 8;
const OP_TRACE: u8 = 9;
const OP_METRICS: u8 = 10;

const ST_OK: u8 = 0;
const ST_VALUE: u8 = 1;
const ST_NOT_FOUND: u8 = 2;
const ST_ERR: u8 = 3;
const ST_REPL_ACK: u8 = 4;

const REPL_OP_SET: u8 = 0;
const REPL_OP_SETF: u8 = 1;
const REPL_OP_DEL: u8 = 2;

/// The two-byte hello each side sends at connect time.
pub fn hello_frame() -> [u8; 2] {
    [MAGIC, PROTO_VERSION]
}

/// Validate a peer's hello. A wrong magic byte means the peer is not
/// speaking this protocol at all; it is reported as a version mismatch
/// too (`theirs` then carries whatever its second byte was).
pub fn check_hello(bytes: [u8; 2]) -> Result<(), ProtoError> {
    if bytes[0] != MAGIC || bytes[1] != PROTO_VERSION {
        return Err(ProtoError::VersionMismatch {
            ours: PROTO_VERSION,
            theirs: bytes[1],
        });
    }
    Ok(())
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read a record.
    Get(String),
    /// Insert/replace a record.
    Set(Record),
    /// Replace one positional field.
    SetField {
        /// Record key.
        key: String,
        /// Positional field index.
        field: usize,
        /// New field bytes.
        value: Vec<u8>,
    },
    /// Remove a record.
    Del(String),
    /// Record count.
    Len,
    /// Server/device/grid counters as text.
    Stats,
    /// Recent per-thread observability spans as text (`jnvm-obs`
    /// tracer dump; empty-ish while `JNVM_OBS=off`).
    Trace,
    /// Observability metrics-registry snapshot as text: per-label
    /// fence/pwb accounting and latency histograms.
    Metrics,
    /// Orderly shutdown.
    Shutdown,
    /// Replication link only: apply one commit group on the backup. `seq`
    /// is the group sequence number the backup echoes in
    /// [`Reply::ReplAck`] once the group is durable on its device.
    ReplApply {
        /// Group sequence number (monotone per link).
        seq: u64,
        /// The group's logical ops, in commit order.
        ops: Vec<WriteOp>,
    },
    /// Frame was delimited correctly but its body violates a limit or does
    /// not decode; the server answers [`Reply::Err`] and carries on.
    Invalid(&'static str),
}

/// One step of the pipelined frame parser.
#[derive(Debug)]
pub enum ParseOutcome {
    /// Not enough buffered bytes for a whole frame yet.
    Incomplete,
    /// A frame: the request and how many buffer bytes it consumed.
    Frame(Request, usize),
    /// The stream is unparseable; the connection must be dropped.
    Malformed(&'static str),
}

fn utf8_key(bytes: &[u8]) -> Result<String, &'static str> {
    if bytes.len() > MAX_KEY {
        return Err("key too long");
    }
    String::from_utf8(bytes.to_vec()).map_err(|_| "key not utf-8")
}

/// Try to parse one frame from the front of `buf`.
pub fn parse_frame(buf: &[u8]) -> ParseOutcome {
    if buf.is_empty() {
        return ParseOutcome::Incomplete;
    }
    if buf[0] != MAGIC {
        return ParseOutcome::Malformed("bad magic");
    }
    if buf.len() < 6 {
        return ParseOutcome::Incomplete;
    }
    let op = buf[1];
    let len = u32::from_le_bytes(buf[2..6].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return ParseOutcome::Malformed("frame too large");
    }
    if buf.len() < 6 + len {
        return ParseOutcome::Incomplete;
    }
    let body = &buf[6..6 + len];
    let consumed = 6 + len;
    let req = match op {
        OP_GET | OP_DEL => match utf8_key(body) {
            Ok(key) if op == OP_GET => Request::Get(key),
            Ok(key) => Request::Del(key),
            Err(e) => Request::Invalid(e),
        },
        OP_SET => match decode_record(body) {
            Some(rec) if rec.key.len() > MAX_KEY => Request::Invalid("key too long"),
            Some(rec) if rec.fields.len() > MAX_FIELDS => Request::Invalid("too many fields"),
            Some(rec) if rec.fields.iter().any(|(_, v)| v.len() > MAX_VALUE) => {
                Request::Invalid("value too large")
            }
            Some(rec) => Request::Set(rec),
            None => Request::Invalid("record does not decode"),
        },
        OP_SETF => parse_setf(body),
        OP_REPL_APPLY => match parse_repl_apply(body) {
            Some(req) => req,
            // The replication link is server-to-server; a body that does
            // not decode means the link is corrupt, not that a client
            // sent a bad record — treat it at frame level and cut it.
            None => return ParseOutcome::Malformed("repl body does not decode"),
        },
        OP_LEN => Request::Len,
        OP_STATS => Request::Stats,
        OP_TRACE => Request::Trace,
        OP_METRICS => Request::Metrics,
        OP_SHUTDOWN => Request::Shutdown,
        _ => return ParseOutcome::Malformed("unknown op"),
    };
    ParseOutcome::Frame(req, consumed)
}

fn parse_setf(body: &[u8]) -> Request {
    if body.len() < 8 {
        return Request::Invalid("setf body truncated");
    }
    let field = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let keylen = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")) as usize;
    if keylen > body.len() - 8 {
        return Request::Invalid("setf key overruns body");
    }
    let key = match utf8_key(&body[8..8 + keylen]) {
        Ok(k) => k,
        Err(e) => return Request::Invalid(e),
    };
    let value = &body[8 + keylen..];
    if field >= MAX_FIELDS {
        return Request::Invalid("field index too large");
    }
    if value.len() > MAX_VALUE {
        return Request::Invalid("value too large");
    }
    Request::SetField {
        key,
        field,
        value: value.to_vec(),
    }
}

fn parse_repl_apply(body: &[u8]) -> Option<Request> {
    if body.len() < 12 {
        return None;
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes")) as usize;
    let mut ops = Vec::with_capacity(count.min(1024));
    let mut at = 12;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let s = body.get(*at..*at + n)?;
        *at += n;
        Some(s)
    };
    let take_u32 = |at: &mut usize| -> Option<usize> {
        Some(u32::from_le_bytes(take(at, 4)?.try_into().expect("4 bytes")) as usize)
    };
    for _ in 0..count {
        let tag = *take(&mut at, 1)?.first()?;
        let op = match tag {
            REPL_OP_SET => {
                let len = take_u32(&mut at)?;
                WriteOp::Set(decode_record(take(&mut at, len)?)?)
            }
            REPL_OP_SETF => {
                let field = take_u32(&mut at)?;
                let keylen = take_u32(&mut at)?;
                let key = String::from_utf8(take(&mut at, keylen)?.to_vec()).ok()?;
                let vlen = take_u32(&mut at)?;
                let value = take(&mut at, vlen)?.to_vec();
                WriteOp::SetField { key, field, value }
            }
            REPL_OP_DEL => {
                let keylen = take_u32(&mut at)?;
                WriteOp::Del(String::from_utf8(take(&mut at, keylen)?.to_vec()).ok()?)
            }
            _ => return None,
        };
        ops.push(op);
    }
    if at != body.len() {
        return None; // trailing garbage inside a framed body
    }
    Some(Request::ReplApply { seq, ops })
}

fn encode_repl_op(op: &WriteOp, out: &mut Vec<u8>) {
    match op {
        WriteOp::Set(rec) => {
            let bytes = encode_record(rec);
            out.push(REPL_OP_SET);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        WriteOp::SetField { key, field, value } => {
            out.push(REPL_OP_SETF);
            out.extend_from_slice(&(*field as u32).to_le_bytes());
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        WriteOp::Del(key) => {
            out.push(REPL_OP_DEL);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
        }
    }
}

/// Encode one commit group as `REPL_APPLY` frames, chunking so no frame
/// body exceeds [`MAX_FRAME`]. Returns `(frame bytes, seq)` pairs; `seq`
/// values are allocated through `next_seq` in send order, so the last
/// pair's seq is the batch's ack target.
pub fn encode_repl_apply(
    ops: &[WriteOp],
    mut next_seq: impl FnMut() -> u64,
) -> Vec<(Vec<u8>, u64)> {
    // Leave generous headroom for the 12-byte repl header + frame header.
    let budget = MAX_FRAME - 1024;
    let mut frames = Vec::new();
    let mut chunk: Vec<u8> = Vec::new();
    let mut chunk_count = 0u32;
    let mut flush = |chunk: &mut Vec<u8>, chunk_count: &mut u32| {
        if *chunk_count == 0 {
            return;
        }
        let seq = next_seq();
        let mut body = Vec::with_capacity(12 + chunk.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&chunk_count.to_le_bytes());
        body.append(chunk);
        let mut frame = Vec::with_capacity(6 + body.len());
        frame.push(MAGIC);
        frame.push(OP_REPL_APPLY);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frames.push((frame, seq));
        *chunk_count = 0;
    };
    for op in ops {
        let mut enc = Vec::new();
        encode_repl_op(op, &mut enc);
        if !chunk.is_empty() && chunk.len() + enc.len() > budget {
            flush(&mut chunk, &mut chunk_count);
        }
        chunk.extend_from_slice(&enc);
        chunk_count += 1;
    }
    flush(&mut chunk, &mut chunk_count);
    frames
}

/// Encode a request frame (client side).
///
/// # Panics
///
/// Panics on [`Request::Invalid`] — it exists only as a parse result.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let (op, body): (u8, Vec<u8>) = match req {
        Request::Get(key) => (OP_GET, key.as_bytes().to_vec()),
        Request::Set(rec) => (OP_SET, encode_record(rec)),
        Request::SetField { key, field, value } => {
            let mut b = Vec::with_capacity(8 + key.len() + value.len());
            b.extend_from_slice(&(*field as u32).to_le_bytes());
            b.extend_from_slice(&(key.len() as u32).to_le_bytes());
            b.extend_from_slice(key.as_bytes());
            b.extend_from_slice(value);
            (OP_SETF, b)
        }
        Request::Del(key) => (OP_DEL, key.as_bytes().to_vec()),
        Request::Len => (OP_LEN, Vec::new()),
        Request::Stats => (OP_STATS, Vec::new()),
        Request::Trace => (OP_TRACE, Vec::new()),
        Request::Metrics => (OP_METRICS, Vec::new()),
        Request::Shutdown => (OP_SHUTDOWN, Vec::new()),
        Request::ReplApply { seq, ops } => {
            let mut b = Vec::new();
            b.extend_from_slice(&seq.to_le_bytes());
            b.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for op in ops {
                encode_repl_op(op, &mut b);
            }
            (OP_REPL_APPLY, b)
        }
        Request::Invalid(m) => panic!("cannot encode Invalid({m})"),
    };
    let mut out = Vec::with_capacity(6 + body.len());
    out.push(MAGIC);
    out.push(op);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// A decoded reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Write/shutdown acknowledged. For writes this means **durable**.
    Ok,
    /// GET/LEN/STATS payload.
    Value(Vec<u8>),
    /// GET/SETF/DEL target absent.
    NotFound,
    /// Request failed; the payload is a human-readable reason.
    Err(String),
    /// Replication link only: groups up to this sequence number are
    /// durable on the backup's device (cumulative).
    ReplAck(u64),
}

/// Encode a reply frame (server side).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let (status, payload): (u8, &[u8]) = match reply {
        Reply::Ok => (ST_OK, &[]),
        Reply::Value(v) => (ST_VALUE, v),
        Reply::NotFound => (ST_NOT_FOUND, &[]),
        Reply::Err(m) => (ST_ERR, m.as_bytes()),
        Reply::ReplAck(seq) => {
            let mut out = Vec::with_capacity(13);
            out.push(ST_REPL_ACK);
            out.extend_from_slice(&8u32.to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
            return out;
        }
    };
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(status);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a reply stream stopped parsing. A server can feed a client
/// anything — torn frames after a crash, a proxy's HTML, line noise — so
/// the client-side parser reports *typed* errors the caller can match on
/// and fold into per-op outcomes, instead of a bare string begging for
/// `.unwrap()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The length word exceeds [`MAX_FRAME`]; the stream is hostile or
    /// desynchronized, nothing after this point can be framed.
    ReplyTooLarge {
        /// The claimed payload length.
        len: usize,
    },
    /// The status byte is none of the known reply codes.
    UnknownStatus(u8),
    /// The connect-time hello carried another protocol version (or no
    /// recognizable hello at all). Failing here is the point: a v1 peer
    /// must not get far enough to misframe a v2 stream.
    VersionMismatch {
        /// The version this side speaks ([`PROTO_VERSION`]).
        ours: u8,
        /// The version byte the peer sent.
        theirs: u8,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::ReplyTooLarge { len } => {
                write!(f, "reply too large ({len} B > {MAX_FRAME} B cap)")
            }
            ProtoError::UnknownStatus(s) => write!(f, "unknown reply status {s:#04x}"),
            ProtoError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak v{ours}, peer sent v{theirs}"
            ),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Try to parse one reply from the front of `buf` (client side). Returns
/// the reply and bytes consumed, `Ok(None)` when incomplete, `Err` when
/// the stream is unparseable from here on.
pub fn parse_reply(buf: &[u8]) -> Result<Option<(Reply, usize)>, ProtoError> {
    if buf.len() < 5 {
        return Ok(None);
    }
    // Status first: on a desynchronized stream the next four bytes are
    // not a length, and "unknown status" is the diagnosis that says so.
    let status = buf[0];
    if !matches!(status, ST_OK | ST_VALUE | ST_NOT_FOUND | ST_ERR | ST_REPL_ACK) {
        return Err(ProtoError::UnknownStatus(status));
    }
    let len = u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::ReplyTooLarge { len });
    }
    if buf.len() < 5 + len {
        return Ok(None);
    }
    let payload = buf[5..5 + len].to_vec();
    let reply = match status {
        ST_OK => Reply::Ok,
        ST_VALUE => Reply::Value(payload),
        ST_NOT_FOUND => Reply::NotFound,
        ST_ERR => Reply::Err(String::from_utf8_lossy(&payload).into_owned()),
        ST_REPL_ACK => {
            if payload.len() != 8 {
                return Err(ProtoError::UnknownStatus(status));
            }
            Reply::ReplAck(u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")))
        }
        _ => unreachable!("status validated above"),
    };
    Ok(Some((reply, 5 + len)))
}

/// Perform the connect-time hello on `stream`: send ours, read the
/// peer's two bytes, validate. I/O failures surface as `io::Error`; a
/// well-delivered but mismatched hello is wrapped as
/// [`ProtoError::VersionMismatch`] inside an `InvalidData` error (the
/// typed value is recoverable via `downcast_ref::<ProtoError>()`).
pub fn handshake<S: std::io::Read + std::io::Write>(stream: &mut S) -> std::io::Result<()> {
    stream.write_all(&hello_frame())?;
    let mut theirs = [0u8; 2];
    stream.read_exact(&mut theirs)?;
    check_hello(theirs)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Pull a typed [`ProtoError`] back out of a [`handshake`] failure, if
/// the failure was protocol-level rather than I/O-level.
pub fn handshake_proto_error(e: &std::io::Error) -> Option<ProtoError> {
    e.get_ref()?.downcast_ref::<ProtoError>().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(req: &Request) -> Request {
        match parse_frame(&encode_request(req)) {
            ParseOutcome::Frame(r, n) => {
                assert_eq!(n, encode_request(req).len());
                r
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Get("k".into()),
            Request::Set(Record::ycsb("k", &[b"v".to_vec(), vec![]])),
            Request::SetField {
                key: "k".into(),
                field: 3,
                value: b"xyz".to_vec(),
            },
            Request::Del("k".into()),
            Request::Len,
            Request::Stats,
            Request::Trace,
            Request::Metrics,
            Request::Shutdown,
        ];
        for r in &reqs {
            assert_eq!(&frame(r), r);
        }
    }

    #[test]
    fn hello_round_trips_and_mismatches_are_typed() {
        assert_eq!(check_hello(hello_frame()), Ok(()));
        // A v1 peer: right magic, older version.
        assert_eq!(
            check_hello([MAGIC, 1]),
            Err(ProtoError::VersionMismatch {
                ours: PROTO_VERSION,
                theirs: 1
            })
        );
        // Not our protocol at all.
        assert!(check_hello([0x47, 0x45]).is_err()); // "GE" of "GET /"
        let msg = format!(
            "{}",
            ProtoError::VersionMismatch {
                ours: PROTO_VERSION,
                theirs: 1
            }
        );
        assert!(
            msg.contains(&format!("v{PROTO_VERSION}")) && msg.contains("v1"),
            "{msg}"
        );
        // The io::Error wrapper keeps the typed value recoverable.
        // Writing our hello advances the cursor by two; the peer's bytes
        // sit right behind it.
        let mut sock = std::io::Cursor::new(vec![0, 0, MAGIC, 1]);
        let err = handshake(&mut sock).unwrap_err();
        assert_eq!(
            handshake_proto_error(&err),
            Some(ProtoError::VersionMismatch {
                ours: PROTO_VERSION,
                theirs: 1
            })
        );
    }

    #[test]
    fn repl_apply_round_trips_through_the_chunker() {
        let ops = vec![
            WriteOp::Set(Record::ycsb("k1", &[b"v1".to_vec(), vec![0u8; 100]])),
            WriteOp::SetField {
                key: "k1".into(),
                field: 1,
                value: b"patched".to_vec(),
            },
            WriteOp::Del("k0".into()),
        ];
        let mut seq = 10u64;
        let frames = encode_repl_apply(&ops, || {
            seq += 1;
            seq
        });
        assert_eq!(frames.len(), 1, "small batch fits one frame");
        let (bytes, fseq) = &frames[0];
        assert_eq!(*fseq, 11);
        match parse_frame(bytes) {
            ParseOutcome::Frame(Request::ReplApply { seq, ops: back }, n) => {
                assert_eq!(seq, 11);
                assert_eq!(back, ops);
                assert_eq!(n, bytes.len());
            }
            other => panic!("expected ReplApply, got {other:?}"),
        }
    }

    #[test]
    fn oversized_groups_chunk_into_multiple_frames() {
        // ~40 ops x 48 KiB > MAX_FRAME: must split, preserving op order
        // and allocating monotone seqs.
        let ops: Vec<WriteOp> = (0..40)
            .map(|i| {
                WriteOp::Set(Record::ycsb(&format!("k{i}"), &[vec![i as u8; 48 << 10]]))
            })
            .collect();
        let mut next = 0u64;
        let frames = encode_repl_apply(&ops, || {
            next += 1;
            next
        });
        assert!(frames.len() > 1, "oversized batch must chunk");
        let mut all: Vec<WriteOp> = Vec::new();
        let mut last_seq = 0;
        for (bytes, seq) in &frames {
            assert!(bytes.len() <= 6 + MAX_FRAME);
            assert!(*seq > last_seq, "seqs must be monotone");
            last_seq = *seq;
            match parse_frame(bytes) {
                ParseOutcome::Frame(Request::ReplApply { ops, .. }, _) => all.extend(ops),
                other => panic!("chunk did not parse: {other:?}"),
            }
        }
        assert_eq!(all, ops, "chunking must preserve the op stream");
    }

    #[test]
    fn repl_body_garbage_is_frame_level() {
        // Truncated repl body: claims 3 ops, carries none.
        let mut body = Vec::new();
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&3u32.to_le_bytes());
        let mut f = vec![MAGIC, 8];
        f.extend_from_slice(&(body.len() as u32).to_le_bytes());
        f.extend_from_slice(&body);
        assert!(matches!(
            parse_frame(&f),
            ParseOutcome::Malformed("repl body does not decode")
        ));
    }

    #[test]
    fn reply_round_trips() {
        for r in [
            Reply::Ok,
            Reply::Value(b"abc".to_vec()),
            Reply::NotFound,
            Reply::Err("nope".into()),
            Reply::ReplAck(0xdead_beef_0042),
        ] {
            let bytes = encode_reply(&r);
            let (back, n) = parse_reply(&bytes).unwrap().unwrap();
            assert_eq!(back, r);
            assert_eq!(n, bytes.len());
        }
    }

    #[test]
    fn garbage_replies_are_typed_errors_not_panics() {
        // A STATS request answered with line noise: the status byte is no
        // reply code. Pre-ProtoError this path only surfaced as a
        // `&'static str` that call sites unwrapped.
        let garbage = b"HTTP/1.1 200 OK\r\n\r\nuptime=9";
        assert_eq!(
            parse_reply(garbage),
            Err(ProtoError::UnknownStatus(b'H'))
        );
        // A plausible status byte but an absurd length word: typed, and
        // carries the claimed length for the caller's diagnostics.
        let mut huge = vec![ST_VALUE];
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            parse_reply(&huge),
            Err(ProtoError::ReplyTooLarge {
                len: u32::MAX as usize
            })
        );
        // Both render a human-readable reason.
        assert!(format!("{}", ProtoError::UnknownStatus(b'H')).contains("0x48"));
        assert!(
            format!("{}", ProtoError::ReplyTooLarge { len: 7 }).contains("7 B")
        );
        // Truncated-but-sane prefixes stay Incomplete, never errors.
        for cut in 0..5 {
            assert_eq!(parse_reply(&huge[..cut]), Ok(None));
        }
    }

    #[test]
    fn pipelined_frames_parse_in_sequence() {
        let mut buf = encode_request(&Request::Get("a".into()));
        buf.extend(encode_request(&Request::Del("b".into())));
        let ParseOutcome::Frame(r1, n1) = parse_frame(&buf) else {
            panic!()
        };
        assert_eq!(r1, Request::Get("a".into()));
        let ParseOutcome::Frame(r2, n2) = parse_frame(&buf[n1..]) else {
            panic!()
        };
        assert_eq!(r2, Request::Del("b".into()));
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn truncation_is_incomplete_not_malformed() {
        let bytes = encode_request(&Request::Set(Record::ycsb("k", &[vec![9u8; 40]])));
        for cut in 0..bytes.len() {
            match parse_frame(&bytes[..cut]) {
                ParseOutcome::Incomplete => {}
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn frame_level_garbage_is_malformed() {
        assert!(matches!(
            parse_frame(b"\x00rubbish"),
            ParseOutcome::Malformed("bad magic")
        ));
        assert!(matches!(
            parse_frame(&[MAGIC, 99, 0, 0, 0, 0]),
            ParseOutcome::Malformed("unknown op")
        ));
        let mut huge = vec![MAGIC, OP_GET];
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            parse_frame(&huge),
            ParseOutcome::Malformed("frame too large")
        ));
    }

    #[test]
    fn body_level_violations_are_invalid_not_malformed() {
        // Oversized value inside a well-delimited SET frame.
        let rec = Record::ycsb("k", &[vec![0u8; MAX_VALUE + 1]]);
        let bytes = encode_request(&Request::Set(rec));
        assert!(matches!(
            parse_frame(&bytes),
            ParseOutcome::Frame(Request::Invalid("value too large"), _)
        ));
        // SETF key length overrunning the body.
        let mut body = Vec::new();
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&1000u32.to_le_bytes());
        body.extend_from_slice(b"shortkey");
        let mut f = vec![MAGIC, OP_SETF];
        f.extend_from_slice(&(body.len() as u32).to_le_bytes());
        f.extend_from_slice(&body);
        assert!(matches!(
            parse_frame(&f),
            ParseOutcome::Frame(Request::Invalid("setf key overruns body"), _)
        ));
    }
}
