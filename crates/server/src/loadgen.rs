//! The pipelined load generator (client side of the wire protocol).
//!
//! Traffic is **deterministic** given `(connection, op index)` — the
//! kill-during-traffic verifier in [`crate::torture`] recomputes every
//! expected record from the same functions ([`key_for`], [`value_for`],
//! [`op_for`]) and compares against what survived recovery.
//!
//! Per connection, op `i` is:
//!
//! | `i % 10` | op |
//! |---|---|
//! | 4 | `DEL key(i-1)` |
//! | 7 | `GET key(i-1)` (read-your-writes probe) |
//! | 9 | `SETF key(i-1) field0` |
//! | else | `SET key(i)` with `fields` deterministic values |
//!
//! Replies come back strictly in request order, so the set of *replied*
//! ops is a prefix of the sent ops — an `Ok`-acked write is by protocol
//! durable, and everything after the first error/silence is unknown.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use jnvm_kvstore::Record;
use jnvm_lincheck::{ClientRecorder, Clock, History, OpKind, Outcome};
use jnvm_ycsb::Histogram;

use crate::proto::{encode_request, parse_reply, ProtoError, Reply, Request};

/// Load shape.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Concurrent connections.
    pub conns: usize,
    /// Requests per connection.
    pub ops_per_conn: usize,
    /// Pipeline window: unreplied requests kept in flight.
    pub pipeline: usize,
    /// Fields per SET record.
    pub fields: usize,
    /// Bytes per field value.
    pub value_size: usize,
    /// Determinism seed: mixed into every key and value, so distinct
    /// seeds hit distinct keys (and therefore shard routings) while the
    /// same seed replays byte-identical invocation sequences.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            conns: 4,
            ops_per_conn: 200,
            pipeline: 16,
            fields: 4,
            value_size: 64,
            seed: 0,
        }
    }
}

/// What one request ended up as, client-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// No reply arrived (crash, shutdown, or connection cut).
    NoReply,
    /// Write acked — durable by protocol contract.
    Ok,
    /// GET/LEN returned a payload that matched expectations.
    Value,
    /// GET returned a payload that did **not** match the expected record.
    BadRead,
    /// Target absent.
    NotFound,
    /// Server answered an error.
    Err,
}

/// One connection's outcome.
#[derive(Debug, Clone)]
pub struct ConnReport {
    /// Connection index.
    pub conn: usize,
    /// Requests actually written to the socket.
    pub sent: usize,
    /// Per-op outcomes, indexed by op index; length `ops_per_conn`.
    pub outcomes: Vec<OpOutcome>,
    /// Reply latency histogram (ns).
    pub hist: Histogram,
    /// Set when the connection stopped because the reply stream became
    /// unparseable (as opposed to timing out or being cut). Previously
    /// this was silently folded into "no reply".
    pub proto_error: Option<ProtoError>,
}

impl ConnReport {
    /// Replies received (a prefix of the sent ops).
    pub fn replied(&self) -> usize {
        self.outcomes
            .iter()
            .take_while(|o| **o != OpOutcome::NoReply)
            .count()
    }
}

/// Aggregated run outcome.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-connection detail.
    pub per_conn: Vec<ConnReport>,
    /// Merged latency histogram across connections.
    pub hist: Histogram,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// `Ok`-acked writes across connections.
    pub acked_writes: u64,
    /// Error replies + bad reads across connections.
    pub errors: u64,
    /// The captured op history: one interval-stamped event per sent
    /// request, `Indeterminate` where the reply never arrived. The kill
    /// tortures mark the crash and append post-recovery observations,
    /// then feed this to [`jnvm_lincheck::check`].
    pub history: History,
}

/// The key op `i` of connection `conn` creates (for SET indices). Seed 0
/// keeps the legacy `c{conn}-{i}` shape; other seeds get a distinct
/// prefix, which re-routes every key through `shard_for_key` — each seed
/// exercises a different shard interleaving of the *same* op pattern.
pub fn key_for(seed: u64, conn: usize, i: usize) -> String {
    if seed == 0 {
        format!("c{conn}-{i:06}")
    } else {
        format!("s{seed:x}-c{conn}-{i:06}")
    }
}

/// Deterministic value bytes for `(seed, conn, op, field)`.
pub fn value_for(seed: u64, conn: usize, i: usize, field: usize, len: usize) -> Vec<u8> {
    let mut x = 0xcbf29ce484222325u64
        ^ seed.wrapping_mul(0xff51afd7ed558ccd)
        ^ (conn as u64).wrapping_mul(0x100000001b3)
        ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15)
        ^ (field as u64).wrapping_mul(0xd1b54a32d192ed03);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        out.push((x >> 33) as u8);
    }
    out
}

/// The deterministic request for `(conn, i)`.
pub fn op_for(conn: usize, i: usize, cfg: &LoadgenConfig) -> Request {
    let seed = cfg.seed;
    match i % 10 {
        4 if i > 0 => Request::Del(key_for(seed, conn, i - 1)),
        7 if i > 0 => Request::Get(key_for(seed, conn, i - 1)),
        9 if i > 0 => Request::SetField {
            key: key_for(seed, conn, i - 1),
            field: 0,
            value: value_for(seed, conn, i, 0, cfg.value_size),
        },
        _ => {
            let values: Vec<Vec<u8>> = (0..cfg.fields.max(1))
                .map(|f| value_for(seed, conn, i, f, cfg.value_size))
                .collect();
            Request::Set(Record::ycsb(&key_for(seed, conn, i), &values))
        }
    }
}

/// The record op `i` of connection `conn` would GET (for `i % 10 == 7`).
fn expected_get(conn: usize, i: usize, cfg: &LoadgenConfig) -> Record {
    let values: Vec<Vec<u8>> = (0..cfg.fields.max(1))
        .map(|f| value_for(cfg.seed, conn, i - 1, f, cfg.value_size))
        .collect();
    Record::ycsb(&key_for(cfg.seed, conn, i - 1), &values)
}

/// The history-capture view of a request: target key plus the abstract
/// [`OpKind`] the checker's sequential spec understands.
fn captured_kind(req: &Request) -> Option<(&str, OpKind)> {
    match req {
        Request::Get(key) => Some((key, OpKind::Get)),
        Request::Del(key) => Some((key, OpKind::Del)),
        Request::Set(rec) => Some((
            &rec.key,
            OpKind::Set(rec.fields.iter().map(|(_, v)| v.clone()).collect()),
        )),
        Request::SetField { key, field, value } => {
            Some((key, OpKind::SetField(*field, value.clone())))
        }
        _ => None,
    }
}

/// `Ok(None)` = stream ended or timed out; `Err` = the reply stream is
/// unparseable ([`ProtoError`]) — typed, so the caller can record it
/// instead of conflating it with silence.
pub(crate) fn read_reply(
    stream: &mut TcpStream,
    rbuf: &mut Vec<u8>,
) -> Result<Option<Reply>, ProtoError> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut tmp = [0u8; 8 * 1024];
    loop {
        if let Some((reply, n)) = parse_reply(rbuf)? {
            rbuf.drain(..n);
            return Ok(Some(reply));
        }
        if Instant::now() > deadline {
            return Ok(None);
        }
        match stream.read(&mut tmp) {
            Ok(0) => return Ok(None),
            Ok(n) => rbuf.extend_from_slice(&tmp[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return Ok(None),
        }
    }
}

type Window = std::collections::VecDeque<(usize, Instant, Option<jnvm_lincheck::OpToken>)>;

fn run_conn(
    addr: SocketAddr,
    conn: usize,
    cfg: &LoadgenConfig,
    clock: &Clock,
) -> (ConnReport, ClientRecorder) {
    let mut recorder = ClientRecorder::new(clock, conn);
    let mut report = ConnReport {
        conn,
        sent: 0,
        outcomes: vec![OpOutcome::NoReply; cfg.ops_per_conn],
        hist: Histogram::new(),
        proto_error: None,
    };
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return (report, recorder);
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    // Connect-time hello: a version mismatch is a typed outcome, not
    // silence.
    if let Err(e) = crate::proto::handshake(&mut stream) {
        report.proto_error = crate::proto::handshake_proto_error(&e);
        return (report, recorder);
    }

    let mut window: Window = Default::default();
    let mut rbuf: Vec<u8> = Vec::new();
    let mut dead = false;

    let settle = |report: &mut ConnReport,
                  recorder: &mut ClientRecorder,
                  window: &mut Window,
                  stream: &mut TcpStream,
                  rbuf: &mut Vec<u8>| {
        let reply = match read_reply(stream, rbuf) {
            Ok(Some(reply)) => reply,
            Ok(None) => return false,
            Err(e) => {
                report.proto_error = Some(e);
                return false;
            }
        };
        let (i, sent_at, tok) = window.pop_front().expect("reply without request");
        report.hist.record(sent_at.elapsed().as_nanos() as u64);
        let (outcome, observed) = match reply {
            Reply::Ok => (OpOutcome::Ok, Outcome::Ok),
            Reply::NotFound => (OpOutcome::NotFound, Outcome::NotFound),
            // An error reply ends the op but leaves its effect unknown:
            // the history keeps it Indeterminate (with a response stamp).
            Reply::Err(_) => (OpOutcome::Err, Outcome::Indeterminate),
            // Acks belong on the replication link, never to a client.
            Reply::ReplAck(_) => (OpOutcome::Err, Outcome::Indeterminate),
            Reply::Value(payload) => {
                // Read-your-writes probe: the GET rides behind this
                // connection's acked SET, so the payload must match. The
                // history records what was *actually served* (an
                // undecodable payload becomes an empty record, which no
                // SET ever writes — the checker convicts it), so the
                // lincheck verdict is independent of this expectation.
                let decoded = jnvm_kvstore::decode_record(&payload);
                let observed = Outcome::Value(
                    decoded
                        .as_ref()
                        .map(|r| r.fields.iter().map(|(_, v)| v.clone()).collect())
                        .unwrap_or_default(),
                );
                let outcome = if decoded.as_ref() == Some(&expected_get(conn, i, cfg)) {
                    OpOutcome::Value
                } else {
                    OpOutcome::BadRead
                };
                (outcome, observed)
            }
        };
        report.outcomes[i] = outcome;
        if let Some(tok) = tok {
            recorder.resolve(tok, observed);
        }
        true
    };

    for i in 0..cfg.ops_per_conn {
        let req = op_for(conn, i, cfg);
        let frame = encode_request(&req);
        // Invoke *before* the bytes hit the socket: the recorded interval
        // must contain the op's real execution window, so widening it at
        // the front is sound, narrowing it is not. An op invoked here but
        // never sent just stays Indeterminate — free to vanish.
        let tok = captured_kind(&req).map(|(key, kind)| recorder.invoke(key, kind));
        if stream.write_all(&frame).is_err() {
            dead = true;
            break;
        }
        report.sent += 1;
        window.push_back((i, Instant::now(), tok));
        while window.len() >= cfg.pipeline.max(1) {
            if !settle(&mut report, &mut recorder, &mut window, &mut stream, &mut rbuf) {
                dead = true;
                break;
            }
        }
        if dead {
            break;
        }
    }
    while !dead && !window.is_empty() {
        if !settle(&mut report, &mut recorder, &mut window, &mut stream, &mut rbuf) {
            break;
        }
    }
    (report, recorder)
}

/// Run the configured load against `addr`; one thread per connection.
pub fn run_loadgen(addr: SocketAddr, cfg: &LoadgenConfig) -> LoadReport {
    let t0 = Instant::now();
    let clock = Clock::new();
    let per_conn: Vec<(ConnReport, ClientRecorder)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|c| {
                let clock = clock.clone();
                s.spawn(move || run_conn(addr, c, cfg, &clock))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("conn thread")).collect()
    });
    let (per_conn, recorders): (Vec<ConnReport>, Vec<ClientRecorder>) =
        per_conn.into_iter().unzip();
    let mut hist = Histogram::new();
    let mut acked_writes = 0u64;
    let mut errors = 0u64;
    for c in &per_conn {
        hist.merge(&c.hist);
        for o in &c.outcomes {
            match o {
                OpOutcome::Ok => acked_writes += 1,
                OpOutcome::Err | OpOutcome::BadRead => errors += 1,
                _ => {}
            }
        }
    }
    LoadReport {
        per_conn,
        hist,
        elapsed: t0.elapsed(),
        acked_writes,
        errors,
        history: History::collect(clock, recorders),
    }
}
