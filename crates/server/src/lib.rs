//! # jnvm-server — a wire-protocol persistent KV server with group commit
//!
//! The serving layer the ROADMAP's north star asks for: a TCP front end
//! over the [`jnvm_kvstore::DataGrid`] + [`jnvm_kvstore::JnvmBackend`]
//! stack, speaking a small length-prefixed protocol
//! (GET/SET/SETF/DEL/LEN/STATS/SHUTDOWN) with per-connection pipelining
//! and bounded-queue backpressure.
//!
//! ## Acked ⇒ durable
//!
//! The server's write path is built around one invariant: **a reply is
//! released only after the write's group durability point**. Worker
//! (connection) threads never touch the persistent device on the write
//! path — they decode ops and enqueue them. A single committer thread
//! drains the queue and runs [`jnvm_kvstore::commit_writes`], which stages
//! each op as its own failure-atomic block and commits whole groups behind
//! a shared fence pair. Only when the group call returns (staging flushed,
//! commit points durable, entries applied) are the batch's tickets
//! resolved and the OK replies sent. A crash at *any* device operation
//! therefore cannot lose an acknowledged write — exactly what the
//! kill-during-traffic torture in [`torture`] sweeps for.
//!
//! Group commit is also the amortization story: `k` pipelined writes cost
//! 3 fences per *group*, not 3 per op, so ordering points per acked write
//! drop well below one under load (asserted via `jnvm-pmem` stats).
//!
//! The crate ships two binaries — `jnvm-server` (standalone server over a
//! fresh crash-sim pool) and `jnvm-loadgen` (pipelined load generator,
//! with a self-hosted kill-during-traffic mode) — and the [`loadgen`] /
//! [`torture`] libraries the tests and CI drive.

pub mod args;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod torture;

pub use args::Args;
pub use loadgen::{run_loadgen, ConnReport, LoadReport, LoadgenConfig};
pub use proto::{
    encode_reply, encode_request, parse_frame, parse_reply, ParseOutcome, Reply, Request,
};
pub use server::{Server, ServerConfig, ServerStats};
pub use torture::{kill_during_traffic, traffic_op_count, KillReport, TortureConfig};
