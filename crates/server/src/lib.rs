//! # jnvm-server — a wire-protocol persistent KV server with group commit
//!
//! The serving layer the ROADMAP's north star asks for: a TCP front end
//! over the [`jnvm_kvstore::DataGrid`] + [`jnvm_kvstore::JnvmBackend`]
//! stack, speaking a small length-prefixed protocol
//! (GET/SET/SETF/DEL/LEN/STATS/SHUTDOWN) with per-connection pipelining
//! and bounded-queue backpressure.
//!
//! ## Acked ⇒ durable
//!
//! The server's write path is built around one invariant: **a reply is
//! released only after the write's group durability point**. Worker
//! (connection) threads never touch the persistent devices on the write
//! path — they decode ops and enqueue them. One committer thread *per
//! pool shard* drains its shard's queue and runs
//! [`jnvm_kvstore::commit_writes`], which stages each op as its own
//! failure-atomic block and commits whole groups behind a shared fence
//! pair. Only when the group call returns (staging flushed, commit points
//! durable, entries applied) are the batch's tickets resolved and the OK
//! replies sent. A crash at *any* device operation therefore cannot lose
//! an acknowledged write — exactly what the kill-during-traffic torture
//! in [`torture`] sweeps for.
//!
//! Group commit is the amortization story: `k` pipelined writes cost
//! 3 fences per *group*, not 3 per op, so ordering points per acked write
//! drop well below one under load (asserted via `jnvm-pmem` stats).
//! Sharding is the concurrency story on top: keys route to `N`
//! independent pools ([`jnvm_kvstore::shard_for_key`]), so `K` writes
//! spread over `N` shards pay `N` *concurrent* fence passes instead of
//! serializing behind one committer, and a crash on one shard's device
//! kills only that shard — the others keep committing (`fig13` measures
//! the scaling; the shard-aware torture pins the isolation).
//!
//! The crate ships two binaries — `jnvm-server` (standalone server over a
//! fresh crash-sim pool) and `jnvm-loadgen` (pipelined load generator,
//! with a self-hosted kill-during-traffic mode) — and the [`loadgen`] /
//! [`torture`] libraries the tests and CI drive.

pub mod args;
pub mod loadgen;
pub mod proto;
pub mod repl;
pub mod server;
pub mod torture;

pub use args::Args;
pub use loadgen::{key_for, op_for, run_loadgen, value_for, ConnReport, LoadReport, LoadgenConfig};
pub use proto::{
    encode_reply, encode_request, handshake, handshake_proto_error, parse_frame, parse_reply,
    ParseOutcome, ProtoError, Reply, Request, PROTO_VERSION,
};
pub use server::{Server, ServerConfig, ServerStats, ShardHandle};
pub use torture::{
    kill_during_traffic, promotion_read_probe, traffic_op_count, KillReport, ProbeReport,
    TortureConfig,
};
