//! `jnvm-loadgen`: pipelined load generator and kill-during-traffic
//! driver for `jnvm-server`.
//!
//! Three modes:
//!
//! ```text
//! # against an already-running server
//! jnvm-loadgen --addr 127.0.0.1:41234 [--conns 4] [--ops 200] ...
//!
//! # spin up a server in-process, load it, report fences per acked write
//! jnvm-loadgen --self-host [--shards 1] [--replicas 1] [--conns 4] ...
//!
//! # one kill-during-traffic experiment (or a whole sweep)
//! jnvm-loadgen --kill-at 1234 [--shards 4] [--crash-shard 0]
//! jnvm-loadgen --kill-sweep 25        # 25 strided points over the op space
//! ```
//!
//! `--shards` opens that many independent pools with one group committer
//! each; the kill modes arm the crash on `--crash-shard`'s device only,
//! so the experiment covers the failure-isolation contract: the other
//! shards must keep acking while one lies dead.
//!
//! `--trace` turns the observability layer on (`JNVM_OBS=log` for the
//! self-hosted server) and dumps the server's `TRACE` and `METRICS`
//! reports after the run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use jnvm_kvstore::{GridConfig, ShardedKv};
use jnvm_pmem::{Pmem, PmemConfig};
use jnvm_server::{
    encode_request, handshake, kill_during_traffic, parse_reply, run_loadgen, traffic_op_count,
    Args, LoadReport, LoadgenConfig, Reply, Request, Server, ServerConfig, ShardHandle,
    TortureConfig,
};

fn load_cfg(args: &Args) -> LoadgenConfig {
    LoadgenConfig {
        conns: args.get_or("conns", 4),
        ops_per_conn: args.get_or("ops", 200),
        pipeline: args.get_or("pipeline", 16),
        fields: args.get_or("fields", 4),
        value_size: args.get_or("value-size", 64),
        seed: args.get_or("seed", 0),
    }
}

fn torture_cfg(args: &Args) -> TortureConfig {
    // --crash-backup arms the kill on the backup replica; the default
    // (also spellable --crash-primary) arms it on the primary — the
    // failover case.
    let crash_replica = usize::from(args.has("crash-backup"));
    TortureConfig {
        load: load_cfg(args),
        shards: args.get_or("map-shards", 16),
        pool_shards: args.get_or("shards", 1),
        replicas: args.get_or("replicas", 1),
        crash_shard: args.get_or("crash-shard", 0),
        crash_replica,
        pool_bytes: args.get_or::<u64>("pool-mb", 64) << 20,
        recovery_threads: args.get_or("recovery-threads", 1),
        server: ServerConfig {
            batch_max: args.get_or("batch-max", 64),
            queue_cap: args.get_or("queue-cap", 256),
        },
    }
}

fn print_report(report: &LoadReport) {
    let replied: usize = report.per_conn.iter().map(|c| c.replied()).sum();
    let sent: usize = report.per_conn.iter().map(|c| c.sent).sum();
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    println!(
        "sent={} replied={} acked_writes={} errors={} elapsed={:.3}s rate={:.0} op/s",
        sent,
        replied,
        report.acked_writes,
        report.errors,
        secs,
        replied as f64 / secs
    );
    for c in &report.per_conn {
        if let Some(e) = c.proto_error {
            eprintln!("conn {}: reply stream unparseable: {e}", c.conn);
        }
    }
    println!("latency {}", report.hist.summary().display_us());
}

/// One-shot request against a running server: handshake, one frame out,
/// one reply back. Used for the post-run `TRACE`/`METRICS` dumps.
fn fetch(addr: SocketAddr, req: &Request) -> Result<String, String> {
    let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    handshake(&mut s).map_err(|e| e.to_string())?;
    s.write_all(&encode_request(req)).map_err(|e| e.to_string())?;
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        match parse_reply(&buf).map_err(|e| e.to_string())? {
            Some((Reply::Value(v), _)) => return Ok(String::from_utf8_lossy(&v).into_owned()),
            Some((other, _)) => return Err(format!("unexpected reply {other:?}")),
            None => {}
        }
        let n = s.read(&mut tmp).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed before reply".into());
        }
        buf.extend_from_slice(&tmp[..n]);
    }
}

/// Dump the server's `TRACE` and `METRICS` reports to stdout.
fn dump_obs(addr: SocketAddr) {
    for (name, req) in [("TRACE", Request::Trace), ("METRICS", Request::Metrics)] {
        match fetch(addr, &req) {
            Ok(text) => println!("--- {name} ---\n{text}"),
            Err(e) => eprintln!("{name} fetch failed: {e}"),
        }
    }
}

fn main() {
    let args = Args::parse();
    let cfg = load_cfg(&args);
    let trace = args.has("trace");
    if trace {
        // Flip the whole process into log mode before any pool exists so
        // every span site on the path is live, whatever JNVM_OBS says.
        jnvm_obs::set_mode(jnvm_obs::ObsMode::Log);
    }

    if let Some(point) = args.get("kill-at") {
        let point: u64 = point.parse().expect("--kill-at takes an op index");
        match kill_during_traffic(point, &torture_cfg(&args)) {
            Ok(r) => println!(
                "point {point}: ok (injected={} acked={} acked_after_first_error={} \
                 promotions={} acked_after_promotion={} degraded={} divergent={} \
                 keys_checked={} ops_counted={})",
                r.injected,
                r.acked_writes,
                r.acked_after_first_error,
                r.promotions,
                r.acked_after_promotion,
                r.degraded_shards,
                r.divergent_keys,
                r.keys_checked,
                r.ops_counted
            ),
            Err(e) => {
                eprintln!("point {point}: FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.get("kill-sweep").is_some() {
        let points: u64 = args.get_or("kill-sweep", 25);
        let tcfg = torture_cfg(&args);
        let total = traffic_op_count(&tcfg);
        println!("op space ~{total}; sweeping {points} strided points");
        let mut failures = 0u32;
        for k in 0..points {
            let point = 1 + k * total.max(1) / points.max(1);
            match kill_during_traffic(point, &tcfg) {
                Ok(r) => println!(
                    "point {point}: ok (injected={} acked={} after_first_err={} \
                     promotions={} after_promotion={} divergent={} keys={})",
                    r.injected,
                    r.acked_writes,
                    r.acked_after_first_error,
                    r.promotions,
                    r.acked_after_promotion,
                    r.divergent_keys,
                    r.keys_checked
                ),
                Err(e) => {
                    eprintln!("point {point}: FAILED: {e}");
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            eprintln!("{failures} point(s) failed");
            std::process::exit(1);
        }
        return;
    }

    if args.has("self-host") {
        let pool_mb: u64 = args.get_or("pool-mb", 256);
        let pool_shards: usize = args.get_or("shards", 1).max(1);
        let replicas: usize = args.get_or("replicas", 1).clamp(1, 2);
        let map_shards: usize = args.get_or("map-shards", 16);
        let scfg = ServerConfig {
            batch_max: args.get_or("batch-max", 64),
            queue_cap: args.get_or("queue-cap", 256),
        };
        let grid_cfg = GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        };
        // One full pool set per replica position; replica 0 is the primary.
        let mut kvs = Vec::with_capacity(replicas);
        let mut pmems: Vec<Arc<Pmem>> = Vec::new();
        for r in 0..replicas {
            let role = if r == 0 { "primary" } else { "backup" };
            let set: Vec<Arc<Pmem>> = (0..pool_shards)
                .map(|s| {
                    Pmem::new(
                        PmemConfig::crash_sim(pool_mb << 20).with_label(&format!("s{s}/{role}")),
                    )
                })
                .collect();
            kvs.push(ShardedKv::create(&set, map_shards, true, grid_cfg).expect("create pools"));
            pmems.extend(set);
        }
        let shard_sets: Vec<Vec<ShardHandle>> = (0..pool_shards)
            .map(|s| {
                kvs.iter()
                    .map(|kv| {
                        let shard = &kv.shards()[s];
                        ShardHandle {
                            grid: Arc::clone(&shard.grid),
                            be: Arc::clone(&shard.be),
                            pmem: Arc::clone(&shard.pmem),
                        }
                    })
                    .collect()
            })
            .collect();
        let before: Vec<_> = pmems.iter().map(|p| p.stats()).collect();
        let server = Server::start_replicated(shard_sets, scfg).expect("bind server");
        let report = run_loadgen(server.addr(), &cfg);
        let stats = server.stats();
        if trace {
            dump_obs(server.addr());
        }
        server.shutdown();
        let mut d = jnvm_pmem::StatsSnapshot::default();
        for (p, b) in pmems.iter().zip(&before) {
            d.absorb(&p.stats().delta(b));
        }
        print_report(&report);
        println!(
            "shards={} groups={} batches={} ordering_points={} per_acked_write={:.4}",
            stats.shards,
            stats.groups,
            stats.batches,
            d.ordering_points(),
            d.ordering_points() as f64 / report.acked_writes.max(1) as f64
        );
        return;
    }

    let addr: SocketAddr = args
        .get("addr")
        .expect("--addr host:port (or --self-host / --kill-at / --kill-sweep)")
        .parse()
        .expect("--addr must be host:port");
    print_report(&run_loadgen(addr, &cfg));
    if trace {
        dump_obs(addr);
    }
}
