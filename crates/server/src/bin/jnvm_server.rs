//! Standalone `jnvm-server`: a persistent KV store behind a TCP wire
//! protocol, with per-shard group commit on the write path.
//!
//! ```text
//! jnvm-server [--pool-mb 256] [--shards 1] [--map-shards 16]
//!             [--replicas 1] [--batch-max 64] [--queue-cap 256]
//!             [--no-fa] [--recovery-threads 1] [--restart-drill]
//! ```
//!
//! `--shards N` opens N independent pools (each `--pool-mb` MiB, with its
//! own FA manager and group committer); keys route to pools by hash.
//! `--map-shards` is the per-pool map shard count — the in-pool sharding
//! that predates multi-pool, orthogonal to routing.
//!
//! `--replicas 2` gives every shard a primary *and* a backup pool on
//! independent devices: each committer streams its group to the backup
//! over the wire protocol before committing the primary, and only acks
//! once both are durable. If the primary's device dies the shard
//! promotes the backup in place and keeps serving; if the backup dies
//! the shard degrades to solo mode. Both events show in the final STATS.
//!
//! Binds an ephemeral localhost port and prints `listening on <addr>`;
//! drive it with `jnvm-loadgen --addr <addr>` or any client speaking the
//! protocol in `jnvm_server::proto`. A SHUTDOWN frame stops it and dumps
//! the final STATS block.
//!
//! `--recovery-threads N` sets the worker-thread count of the per-shard
//! recovery pass whenever this process reopens its pools (shards recover
//! concurrently on top of that); `--restart-drill` exercises it before
//! serving: the freshly formatted pools are crashed, reopened with an
//! N-way recovery per shard, and the recovery reports printed, so the
//! served heaps are *recovered* heaps. With replicas the drill runs on
//! every replica's pools — a restarted server recovers both sides.

use std::sync::Arc;
use std::time::Duration;

use jnvm::RecoveryOptions;
use jnvm_kvstore::{GridConfig, ShardedKv};
use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig, StatsSnapshot};
use jnvm_server::{Args, Server, ServerConfig, ShardHandle};

fn main() {
    let args = Args::parse();
    let pool_mb: u64 = args.get_or("pool-mb", 256);
    let pool_shards: usize = args.get_or::<usize>("shards", 1).max(1);
    let map_shards: usize = args.get_or("map-shards", 16);
    let replicas: usize = args.get_or::<usize>("replicas", 1).clamp(1, 2);
    let fa = !args.has("no-fa");
    let cfg = ServerConfig {
        batch_max: args.get_or("batch-max", 64),
        queue_cap: args.get_or("queue-cap", 256),
    };
    let recovery_threads: usize = args.get_or("recovery-threads", 1);

    // No volatile cache: the J-NVM backends gain nothing from one (§5.3.1).
    let grid_cfg = GridConfig {
        cache_capacity: 0,
        ..GridConfig::default()
    };

    // One full pool stack per replica; identical shard counts on every
    // replica mean identical key routing, which is what lets a backup
    // replay its primary's op stream.
    let mut kvs: Vec<ShardedKv> = Vec::with_capacity(replicas);
    let mut by_replica: Vec<Vec<Arc<Pmem>>> = Vec::with_capacity(replicas);
    for r in 0..replicas {
        let role = if r == 0 { "primary" } else { "backup" };
        let pmems: Vec<Arc<Pmem>> = (0..pool_shards)
            .map(|s| {
                Pmem::new(PmemConfig::crash_sim(pool_mb << 20).with_label(&format!("s{s}/{role}")))
            })
            .collect();
        let mut kv = ShardedKv::create(&pmems, map_shards, fa, grid_cfg).expect("create pools");

        if args.has("restart-drill") {
            // Crash every fresh pool and serve the *recovered* heaps: the
            // same reopen path a real restart takes — each shard recovered
            // concurrently, each with the configured thread count.
            for s in kv.shards() {
                s.rt.psync();
            }
            drop(kv);
            for p in &pmems {
                p.crash(&CrashPolicy::strict()).expect("simulated power failure");
            }
            let (kv2, reports) = ShardedKv::open(
                &pmems,
                fa,
                grid_cfg,
                RecoveryOptions::parallel(recovery_threads),
            )
            .expect("recovery");
            for (i, report) in reports.iter().enumerate() {
                println!(
                    "restart drill replica {r} shard {i}: threads={} replayed={} \
                     live_objects={} live_blocks={} freed_blocks={} gc={:.3}ms (modeled {:.3}ms)",
                    report.threads,
                    report.replayed_logs,
                    report.live_objects,
                    report.live_blocks,
                    report.freed_blocks,
                    report.gc_time.as_secs_f64() * 1e3,
                    report.modeled_gc_time().as_secs_f64() * 1e3,
                );
            }
            kv = kv2;
        }

        by_replica.push(pmems);
        kvs.push(kv);
    }

    let shard_sets: Vec<Vec<ShardHandle>> = (0..pool_shards)
        .map(|s| {
            kvs.iter()
                .map(|kv| {
                    let shard = &kv.shards()[s];
                    ShardHandle {
                        grid: Arc::clone(&shard.grid),
                        be: Arc::clone(&shard.be),
                        pmem: Arc::clone(&shard.pmem),
                    }
                })
                .collect()
        })
        .collect();
    // The kv stacks (notably each shard's runtime) must outlive the
    // server: dropping a runtime tears down the heap its backend's
    // proxies point into.
    let _keepalive = &kvs;

    let server = Server::start_replicated(shard_sets, cfg).expect("bind server");
    println!("listening on {}", server.addr());
    println!(
        "pools={}x{} MiB replicas={} map_shards={} fa={} batch_max={} queue_cap={} \
         recovery_threads={}",
        pool_shards, pool_mb, replicas, map_shards, fa, cfg.batch_max, cfg.queue_cap,
        recovery_threads
    );

    while !server.shutdown_requested() && !server.is_dead() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = server.stats();
    server.shutdown();
    let mut d = StatsSnapshot::default();
    for pmems in &by_replica {
        for p in pmems {
            d.absorb(&p.stats());
        }
    }
    println!(
        "acked_writes={} nacked={} failed={} groups={} batches={} conns={} shards={} dead_shards={}",
        stats.acked_writes,
        stats.nacked_writes,
        stats.failed_writes,
        stats.groups,
        stats.batches,
        stats.connections,
        stats.shards,
        stats.dead_shards
    );
    if replicas > 1 {
        println!(
            "replicas={} promotions={} degraded_shards={} acked_after_promotion={} \
             repl_sent={} repl_acked={}",
            stats.replicas,
            stats.promotions,
            stats.degraded_shards,
            stats.acked_after_promotion,
            stats.repl_sent,
            stats.repl_acked
        );
    }
    println!(
        "ordering_points={} per_acked_write={:.4}",
        d.ordering_points(),
        d.ordering_points() as f64 / stats.acked_writes.max(1) as f64
    );
}
