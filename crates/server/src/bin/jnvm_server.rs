//! Standalone `jnvm-server`: a persistent KV store behind a TCP wire
//! protocol, with group commit on the write path.
//!
//! ```text
//! jnvm-server [--pool-mb 256] [--shards 16] [--batch-max 64]
//!             [--queue-cap 256] [--no-fa]
//! ```
//!
//! Binds an ephemeral localhost port and prints `listening on <addr>`;
//! drive it with `jnvm-loadgen --addr <addr>` or any client speaking the
//! protocol in `jnvm_server::proto`. A SHUTDOWN frame stops it and dumps
//! the final STATS block.

use std::sync::Arc;
use std::time::Duration;

use jnvm::JnvmBuilder;
use jnvm_heap::HeapConfig;
use jnvm_kvstore::{register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend};
use jnvm_pmem::{Pmem, PmemConfig};
use jnvm_server::{Args, Server, ServerConfig};

fn main() {
    let args = Args::parse();
    let pool_mb: u64 = args.get_or("pool-mb", 256);
    let shards: usize = args.get_or("shards", 16);
    let fa = !args.has("no-fa");
    let cfg = ServerConfig {
        batch_max: args.get_or("batch-max", 64),
        queue_cap: args.get_or("queue-cap", 256),
    };

    let pmem = Pmem::new(PmemConfig::crash_sim(pool_mb << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("create pool");
    let be = Arc::new(JnvmBackend::create(&rt, shards.max(1), fa).expect("create backend"));
    let grid = Arc::new(DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    ));
    let server = Server::start(grid, Arc::clone(&be), Arc::clone(&pmem), cfg)
        .expect("bind server");
    println!("listening on {}", server.addr());
    println!(
        "pool={} MiB shards={} fa={} batch_max={} queue_cap={}",
        pool_mb, shards, fa, cfg.batch_max, cfg.queue_cap
    );

    while !server.shutdown_requested() && !server.is_dead() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = server.stats();
    server.shutdown();
    let d = pmem.stats();
    println!(
        "acked_writes={} nacked={} failed={} groups={} batches={} conns={}",
        stats.acked_writes,
        stats.nacked_writes,
        stats.failed_writes,
        stats.groups,
        stats.batches,
        stats.connections
    );
    println!(
        "ordering_points={} per_acked_write={:.4}",
        d.ordering_points(),
        d.ordering_points() as f64 / stats.acked_writes.max(1) as f64
    );
}
