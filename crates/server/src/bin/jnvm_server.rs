//! Standalone `jnvm-server`: a persistent KV store behind a TCP wire
//! protocol, with per-shard group commit on the write path.
//!
//! ```text
//! jnvm-server [--pool-mb 256] [--shards 1] [--map-shards 16]
//!             [--batch-max 64] [--queue-cap 256] [--no-fa]
//!             [--recovery-threads 1] [--restart-drill]
//! ```
//!
//! `--shards N` opens N independent pools (each `--pool-mb` MiB, with its
//! own FA manager and group committer); keys route to pools by hash.
//! `--map-shards` is the per-pool map shard count — the in-pool sharding
//! that predates multi-pool, orthogonal to routing.
//!
//! Binds an ephemeral localhost port and prints `listening on <addr>`;
//! drive it with `jnvm-loadgen --addr <addr>` or any client speaking the
//! protocol in `jnvm_server::proto`. A SHUTDOWN frame stops it and dumps
//! the final STATS block.
//!
//! `--recovery-threads N` sets the worker-thread count of the per-shard
//! recovery pass whenever this process reopens its pools (shards recover
//! concurrently on top of that); `--restart-drill` exercises it before
//! serving: the freshly formatted pools are crashed, reopened with an
//! N-way recovery per shard, and the recovery reports printed, so the
//! served heaps are *recovered* heaps.

use std::sync::Arc;
use std::time::Duration;

use jnvm::RecoveryOptions;
use jnvm_kvstore::{GridConfig, ShardedKv};
use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig, StatsSnapshot};
use jnvm_server::{Args, Server, ServerConfig, ShardHandle};

fn main() {
    let args = Args::parse();
    let pool_mb: u64 = args.get_or("pool-mb", 256);
    let pool_shards: usize = args.get_or("shards", 1);
    let map_shards: usize = args.get_or("map-shards", 16);
    let fa = !args.has("no-fa");
    let cfg = ServerConfig {
        batch_max: args.get_or("batch-max", 64),
        queue_cap: args.get_or("queue-cap", 256),
    };
    let recovery_threads: usize = args.get_or("recovery-threads", 1);

    let pmems: Vec<Arc<Pmem>> = (0..pool_shards.max(1))
        .map(|_| Pmem::new(PmemConfig::crash_sim(pool_mb << 20)))
        .collect();
    // No volatile cache: the J-NVM backends gain nothing from one (§5.3.1).
    let grid_cfg = GridConfig {
        cache_capacity: 0,
        ..GridConfig::default()
    };
    let mut kv = ShardedKv::create(&pmems, map_shards, fa, grid_cfg).expect("create pools");

    if args.has("restart-drill") {
        // Crash every fresh pool and serve the *recovered* heaps: the
        // same reopen path a real restart takes — each shard recovered
        // concurrently, each with the configured thread count.
        for s in kv.shards() {
            s.rt.psync();
        }
        drop(kv);
        for p in &pmems {
            p.crash(&CrashPolicy::strict()).expect("simulated power failure");
        }
        let (kv2, reports) = ShardedKv::open(
            &pmems,
            fa,
            grid_cfg,
            RecoveryOptions::parallel(recovery_threads),
        )
        .expect("recovery");
        for (i, report) in reports.iter().enumerate() {
            println!(
                "restart drill shard {i}: threads={} replayed={} live_objects={} \
                 live_blocks={} freed_blocks={} gc={:.3}ms (modeled {:.3}ms)",
                report.threads,
                report.replayed_logs,
                report.live_objects,
                report.live_blocks,
                report.freed_blocks,
                report.gc_time.as_secs_f64() * 1e3,
                report.modeled_gc_time().as_secs_f64() * 1e3,
            );
        }
        kv = kv2;
    }

    let handles: Vec<ShardHandle> = kv
        .shards()
        .iter()
        .map(|s| ShardHandle {
            grid: Arc::clone(&s.grid),
            be: Arc::clone(&s.be),
            pmem: Arc::clone(&s.pmem),
        })
        .collect();
    // The kv stack (notably each shard's runtime) must outlive the
    // server: dropping a runtime tears down the heap its backend's
    // proxies point into.
    let _keepalive = &kv;

    let server = Server::start_sharded(handles, cfg).expect("bind server");
    println!("listening on {}", server.addr());
    println!(
        "pools={}x{} MiB map_shards={} fa={} batch_max={} queue_cap={} recovery_threads={}",
        pool_shards, pool_mb, map_shards, fa, cfg.batch_max, cfg.queue_cap, recovery_threads
    );

    while !server.shutdown_requested() && !server.is_dead() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = server.stats();
    server.shutdown();
    let mut d = StatsSnapshot::default();
    for p in &pmems {
        d.absorb(&p.stats());
    }
    println!(
        "acked_writes={} nacked={} failed={} groups={} batches={} conns={} shards={} dead_shards={}",
        stats.acked_writes,
        stats.nacked_writes,
        stats.failed_writes,
        stats.groups,
        stats.batches,
        stats.connections,
        stats.shards,
        stats.dead_shards
    );
    println!(
        "ordering_points={} per_acked_write={:.4}",
        d.ordering_points(),
        d.ordering_points() as f64 / stats.acked_writes.max(1) as f64
    );
}
