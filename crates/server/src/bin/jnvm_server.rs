//! Standalone `jnvm-server`: a persistent KV store behind a TCP wire
//! protocol, with group commit on the write path.
//!
//! ```text
//! jnvm-server [--pool-mb 256] [--shards 16] [--batch-max 64]
//!             [--queue-cap 256] [--no-fa] [--recovery-threads 1]
//!             [--restart-drill]
//! ```
//!
//! Binds an ephemeral localhost port and prints `listening on <addr>`;
//! drive it with `jnvm-loadgen --addr <addr>` or any client speaking the
//! protocol in `jnvm_server::proto`. A SHUTDOWN frame stops it and dumps
//! the final STATS block.
//!
//! `--recovery-threads N` sets the worker-thread count of the recovery
//! pass whenever this process reopens its pool; `--restart-drill`
//! exercises it before serving: the freshly formatted pool is crashed,
//! reopened with an N-way recovery, and the recovery report printed, so
//! the served heap is a *recovered* heap.

use std::sync::Arc;
use std::time::Duration;

use jnvm::{Jnvm, JnvmBuilder, RecoveryOptions};
use jnvm_heap::HeapConfig;
use jnvm_kvstore::{register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend};
use jnvm_pmem::{CrashPolicy, Pmem, PmemConfig};
use jnvm_server::{Args, Server, ServerConfig};

fn main() {
    let args = Args::parse();
    let pool_mb: u64 = args.get_or("pool-mb", 256);
    let shards: usize = args.get_or("shards", 16);
    let fa = !args.has("no-fa");
    let cfg = ServerConfig {
        batch_max: args.get_or("batch-max", 64),
        queue_cap: args.get_or("queue-cap", 256),
    };

    let recovery_threads: usize = args.get_or("recovery-threads", 1);

    let pmem = Pmem::new(PmemConfig::crash_sim(pool_mb << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("create pool");
    let mut rt: Jnvm = rt;
    let mut be = Arc::new(JnvmBackend::create(&rt, shards.max(1), fa).expect("create backend"));
    // `rt` is never queried again after backend construction, but it must
    // outlive the server: dropping the runtime tears down the heap the
    // backend's proxies point into.

    if args.has("restart-drill") {
        // Crash the fresh pool and serve the *recovered* heap: the same
        // reopen path a real restart takes, at the configured thread count.
        rt.psync();
        drop(be);
        drop(rt);
        pmem.crash(&CrashPolicy::strict()).expect("simulated power failure");
        let (rt2, report) = register_kvstore(JnvmBuilder::new())
            .open_with_options(
                Arc::clone(&pmem),
                RecoveryOptions::parallel(recovery_threads),
            )
            .expect("recovery");
        println!(
            "restart drill: threads={} replayed={} live_objects={} live_blocks={} \
             freed_blocks={} gc={:.3}ms (modeled {:.3}ms)",
            report.threads,
            report.replayed_logs,
            report.live_objects,
            report.live_blocks,
            report.freed_blocks,
            report.gc_time.as_secs_f64() * 1e3,
            report.modeled_gc_time().as_secs_f64() * 1e3,
        );
        be = Arc::new(JnvmBackend::open(&rt2, fa).expect("backend reopen"));
        rt = rt2;
    }
    let _keepalive = rt;

    let grid = Arc::new(DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    ));
    let server = Server::start(grid, Arc::clone(&be), Arc::clone(&pmem), cfg)
        .expect("bind server");
    println!("listening on {}", server.addr());
    println!(
        "pool={} MiB shards={} fa={} batch_max={} queue_cap={} recovery_threads={}",
        pool_mb, shards, fa, cfg.batch_max, cfg.queue_cap, recovery_threads
    );

    while !server.shutdown_requested() && !server.is_dead() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = server.stats();
    server.shutdown();
    let d = pmem.stats();
    println!(
        "acked_writes={} nacked={} failed={} groups={} batches={} conns={}",
        stats.acked_writes,
        stats.nacked_writes,
        stats.failed_writes,
        stats.groups,
        stats.batches,
        stats.connections
    );
    println!(
        "ordering_points={} per_acked_write={:.4}",
        d.ordering_points(),
        d.ordering_points() as f64 / stats.acked_writes.max(1) as f64
    );
}
