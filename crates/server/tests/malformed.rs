//! Malformed-protocol robustness: truncated frames, oversized values,
//! garbage magic, and mid-pipeline connection drops must never poison the
//! grid or leak staged batch entries — the next connection gets clean
//! service and LEN stays consistent.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use jnvm::JnvmBuilder;
use jnvm_heap::HeapConfig;
use jnvm_kvstore::{register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend, Record};
use jnvm_pmem::{Pmem, PmemConfig};
use jnvm_server::{
    encode_reply, encode_request, parse_reply, Reply, Request, Server, ServerConfig,
};

fn start_server() -> (Server, Arc<Pmem>) {
    let pmem = Pmem::new(PmemConfig::crash_sim(64 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .unwrap();
    let be = Arc::new(JnvmBackend::create(&rt, 8, true).unwrap());
    let grid = Arc::new(DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    ));
    let server = Server::start(grid, be, Arc::clone(&pmem), ServerConfig::default()).unwrap();
    // Keep the runtime alive for the server's lifetime.
    std::mem::forget(rt);
    (server, pmem)
}

fn connect(server: &Server) -> TcpStream {
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    jnvm_server::handshake(&mut s).expect("hello");
    s
}

fn next_reply(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Option<Reply> {
    let mut tmp = [0u8; 4096];
    loop {
        match parse_reply(buf) {
            Ok(Some((reply, n))) => {
                buf.drain(..n);
                return Some(reply);
            }
            Ok(None) => {}
            Err(_) => return None,
        }
        match stream.read(&mut tmp) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(_) => return None,
        }
    }
}

fn roundtrip(stream: &mut TcpStream, buf: &mut Vec<u8>, req: &Request) -> Option<Reply> {
    stream.write_all(&encode_request(req)).unwrap();
    next_reply(stream, buf)
}

fn set_record(stream: &mut TcpStream, buf: &mut Vec<u8>, key: &str) {
    let rec = Record::ycsb(key, &[b"v0".to_vec(), b"v1".to_vec()]);
    assert_eq!(
        roundtrip(stream, buf, &Request::Set(rec)),
        Some(Reply::Ok),
        "SET {key} must ack"
    );
}

fn grid_len(stream: &mut TcpStream, buf: &mut Vec<u8>) -> u64 {
    match roundtrip(stream, buf, &Request::Len) {
        Some(Reply::Value(v)) => u64::from_le_bytes(v.try_into().unwrap()),
        other => panic!("LEN returned {other:?}"),
    }
}

#[test]
fn garbage_magic_closes_connection_without_damage() {
    let (server, _pmem) = start_server();
    {
        let mut s = connect(&server);
        let mut buf = Vec::new();
        set_record(&mut s, &mut buf, "before-garbage");
        // Wrong magic byte: frame-level violation, server cuts the line.
        s.write_all(&[0xff; 32]).unwrap();
        let mut tmp = [0u8; 64];
        assert_eq!(s.read(&mut tmp).unwrap_or(0), 0, "server must close");
    }
    let mut s = connect(&server);
    let mut buf = Vec::new();
    assert_eq!(grid_len(&mut s, &mut buf), 1, "acked record survives");
    set_record(&mut s, &mut buf, "after-garbage");
    assert_eq!(grid_len(&mut s, &mut buf), 2, "next connection serves fine");
    server.shutdown();
}

#[test]
fn version_mismatch_at_hello_closes_before_any_service() {
    let (server, _pmem) = start_server();
    {
        // A well-meaning v1 client: right magic, older protocol version.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut server_hello = [0u8; 2];
        s.read_exact(&mut server_hello).unwrap();
        assert_eq!(
            server_hello,
            [0x4e, jnvm_server::PROTO_VERSION],
            "server announces the current protocol version"
        );
        s.write_all(&[0x4e, 1]).unwrap();
        // The server closes without serving; a SET after the bad hello
        // gets no reply, just EOF.
        let _ = s.write_all(&encode_request(&Request::Set(Record::ycsb(
            "v1-write",
            &[b"x".to_vec()],
        ))));
        let mut tmp = [0u8; 64];
        assert_eq!(s.read(&mut tmp).unwrap_or(0), 0, "server must close");
    }
    {
        // Not our protocol at all: garbage instead of a hello.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(&[0xff; 32]).unwrap();
        let mut tmp = [0u8; 64];
        // Skip the server's own hello, then expect EOF.
        let _ = s.read(&mut tmp);
        assert_eq!(s.read(&mut tmp).unwrap_or(0), 0, "server must close");
    }
    // Neither bad peer hurt the store; a v2 client gets clean service.
    let mut s = connect(&server);
    let mut buf = Vec::new();
    assert_eq!(grid_len(&mut s, &mut buf), 0, "nothing leaked in");
    set_record(&mut s, &mut buf, "after-mismatch");
    assert_eq!(grid_len(&mut s, &mut buf), 1);
    server.shutdown();
}

#[test]
fn truncated_frame_then_disconnect_leaves_grid_consistent() {
    let (server, _pmem) = start_server();
    {
        let mut s = connect(&server);
        let mut buf = Vec::new();
        set_record(&mut s, &mut buf, "t-full");
        // Send only a prefix of a valid SET frame, then vanish.
        let frame = encode_request(&Request::Set(Record::ycsb(
            "t-truncated",
            &[vec![7u8; 128]],
        )));
        s.write_all(&frame[..frame.len() / 2]).unwrap();
    }
    let mut s = connect(&server);
    let mut buf = Vec::new();
    assert_eq!(grid_len(&mut s, &mut buf), 1);
    assert!(
        matches!(roundtrip(&mut s, &mut buf, &Request::Get("t-truncated".into())),
            Some(Reply::NotFound)),
        "half a frame must not half-apply"
    );
    server.shutdown();
}

#[test]
fn oversized_value_is_rejected_but_connection_survives() {
    let (server, _pmem) = start_server();
    let mut s = connect(&server);
    let mut buf = Vec::new();
    // Body-level violation (value over MAX_VALUE): Err reply, stream
    // stays framed so the connection keeps working.
    let reply = roundtrip(
        &mut s,
        &mut buf,
        &Request::SetField {
            key: "big".into(),
            field: 0,
            value: vec![0u8; (64 << 10) + 1],
        },
    );
    assert!(matches!(reply, Some(Reply::Err(_))), "got {reply:?}");
    set_record(&mut s, &mut buf, "after-oversized");
    assert_eq!(grid_len(&mut s, &mut buf), 1);
    server.shutdown();
}

#[test]
fn mid_pipeline_drop_does_not_leak_staged_entries() {
    let (server, _pmem) = start_server();
    {
        let mut s = connect(&server);
        // Fire a burst of pipelined SETs and slam the connection shut
        // without reading a single reply. The committer still owns the
        // queued ops; none of them may wedge the batch machinery.
        let mut burst = Vec::new();
        for i in 0..32 {
            let rec = Record::ycsb(&format!("drop-{i:02}"), &[vec![i as u8; 64]]);
            burst.extend_from_slice(&encode_request(&Request::Set(rec)));
        }
        s.write_all(&burst).unwrap();
        // Drop with replies unread.
    }
    // The server must still serve — and every one of those writes either
    // fully applied or not at all (no torn keys).
    let mut s = connect(&server);
    let mut buf = Vec::new();
    std::thread::sleep(Duration::from_millis(200));
    let len = grid_len(&mut s, &mut buf);
    assert!(len <= 32, "at most the burst landed, got {len}");
    for i in 0..32 {
        match roundtrip(&mut s, &mut buf, &Request::Get(format!("drop-{i:02}"))) {
            Some(Reply::Value(payload)) => {
                let rec = jnvm_kvstore::decode_record(&payload).expect("untorn record");
                assert_eq!(rec.fields[0].1, vec![i as u8; 64]);
            }
            Some(Reply::NotFound) => {}
            other => panic!("GET drop-{i:02} returned {other:?}"),
        }
    }
    set_record(&mut s, &mut buf, "post-drop");
    assert_eq!(grid_len(&mut s, &mut buf), len + 1);
    server.shutdown();
}

#[test]
fn malformed_reply_encoding_is_never_sent() {
    // encode_reply/parse_reply round-trip (client-side framing sanity).
    for reply in [
        Reply::Ok,
        Reply::NotFound,
        Reply::Value(vec![1, 2, 3]),
        Reply::Err("boom".into()),
    ] {
        let bytes = encode_reply(&reply);
        let (parsed, n) = parse_reply(&bytes).unwrap().unwrap();
        assert_eq!(n, bytes.len());
        assert_eq!(parsed, reply);
    }
}
