//! Umbrella crate for the `jnvm-rs` workspace.
//!
//! Re-exports the public crates of the J-NVM reproduction so that examples
//! and integration tests can use a single dependency root. See `README.md`
//! for the architecture overview and `DESIGN.md` for the system inventory.

pub use jnvm;
pub use jnvm_faultsim as faultsim;
pub use jnvm_obs as obs;
pub use jnvm_gcsim as gcsim;
pub use jnvm_heap as heap;
pub use jnvm_jpdt as jpdt;
pub use jnvm_kvstore as kvstore;
pub use jnvm_lincheck as lincheck;
pub use jnvm_pmem as pmem;
pub use jnvm_server as server;
pub use jnvm_tpcb as tpcb;
pub use jnvm_ycsb as ycsb;
