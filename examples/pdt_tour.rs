//! A tour of the J-PDT persistent data types (§4.3): strings, arrays, the
//! extensible array, maps in their three caching modes, and sets — all
//! crash-consistent without failure-atomic blocks.
//!
//! Run: `cargo run --example pdt_tour`

use std::sync::Arc;

use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::{JnvmBuilder, PObject};
use jnvm_repro::jpdt::{
    register_jpdt, CacheMode, PBytes, PI64TreeMap, PLongArray, PRefVec, PString, PStringHashMap,
    PStringSet,
};
use jnvm_repro::pmem::{CrashPolicy, Pmem, PmemConfig};

fn main() {
    let pmem = Pmem::new(PmemConfig::crash_sim(64 << 20));
    let rt = register_jpdt(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");

    // Strings and byte blobs: small ones are pool-packed (§4.4).
    let s = PString::from_str_in(&rt, "persistent and pooled").expect("pstring");
    println!("PString: {:?} (pooled: {})", s.to_string_lossy(), s.is_pooled());

    // Fixed arrays.
    let arr = PLongArray::new(&rt, 8).expect("array");
    for i in 0..8 {
        arr.set(i, (i * i) as i64);
    }
    arr.pwb();
    println!("PLongArray: {:?}", (0..8).map(|i| arr.get(i)).collect::<Vec<_>>());

    // The extensible array (ArrayList drop-in).
    let vec = PRefVec::new(&rt, 2).expect("vec");
    for word in ["the", "quick", "brown", "fox"] {
        let w = PString::from_str_in(&rt, word).expect("word");
        vec.push(w.addr()).expect("push");
    }
    print!("PRefVec ({} elems, capacity {}):", vec.len(), vec.capacity());
    vec.for_each(|_, addr| {
        print!(" {}", PString::resurrect(&rt, addr).to_string_lossy());
    });
    println!();

    // Maps: hash / tree / skip-list mirrors; base / cached / eager modes.
    let map = PStringHashMap::with_mode(&rt, CacheMode::Cached).expect("map");
    rt.root_put("tour-map", &map).expect("root");
    for (k, v) in [("alpha", "A"), ("beta", "B"), ("gamma", "Γ")] {
        let blob = PBytes::new(&rt, v.as_bytes()).expect("blob");
        map.put(k.to_string(), blob.addr()).expect("put");
    }
    println!("PStringHashMap has {} entries (Cached mode)", map.len());

    let tree = PI64TreeMap::new(&rt).expect("tree");
    for k in [42i64, 7, 99, 1] {
        let blob = PBytes::new(&rt, &k.to_le_bytes()).expect("blob");
        tree.put(k, blob.addr()).expect("put");
    }
    println!("PI64TreeMap keys in order: {:?}", tree.keys(10));

    let set = PStringSet::new(&rt).expect("set");
    rt.root_put("tour-set", &set).expect("root");
    set.insert("unique".into()).expect("insert");
    set.insert("unique".into()).expect("insert twice");
    println!("PStringSet: len {} (duplicate rejected)", set.len());

    // Everything reachable from the root map survives a power failure.
    pmem.crash(&CrashPolicy::strict()).expect("crash");
    let (rt2, report) = register_jpdt(JnvmBuilder::new())
        .open(Arc::clone(&pmem))
        .expect("recovery");
    println!(
        "\nafter crash: {} live objects recovered, {} blocks reclaimed",
        report.live_objects, report.freed_blocks
    );
    let map2 = rt2
        .root_get_as::<PStringHashMap>("tour-map")
        .expect("typed")
        .expect("map survived");
    let gamma = map2.get(&"gamma".to_string()).expect("entry survived");
    println!(
        "map[gamma] = {:?} — the mirror was rebuilt from NVMM at resurrection",
        String::from_utf8_lossy(&PBytes::resurrect(&rt2, gamma).to_vec())
    );
    // The unrooted tour objects (string, arrays, tree) were reclaimed by
    // the recovery GC: liveness is by reachability.
}
