//! An Infinispan-like embedded data grid with the J-PDT persistent
//! backend, driven by a short YCSB-A run (the setup behind Figure 7).
//!
//! Run: `cargo run --release --example kvcache`

use std::sync::Arc;

use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::JnvmBuilder;
use jnvm_repro::kvstore::{register_kvstore, DataGrid, GridConfig, JnvmBackend, Record};
use jnvm_repro::pmem::{Pmem, PmemConfig};
use jnvm_repro::ycsb::{run_load, run_workload, KvClient, Workload};

struct Client(Arc<DataGrid>);

impl KvClient for Client {
    fn read(&mut self, key: &str) -> bool {
        self.0.read(key).is_some()
    }
    fn update(&mut self, key: &str, field: usize, value: &[u8]) -> bool {
        self.0.update_field(key, field, value)
    }
    fn insert(&mut self, key: &str, fields: &[Vec<u8>]) -> bool {
        self.0.insert(&Record::ycsb(key, fields))
    }
    fn rmw(&mut self, key: &str, field: usize, value: &[u8]) -> bool {
        self.0.rmw(key, field, value)
    }
}

fn main() {
    let pmem = Pmem::new(PmemConfig::perf(512 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let backend = Arc::new(JnvmBackend::create(&rt, 16, false).expect("backend"));
    // The paper disables Infinispan's cache for J-NVM backends: caching
    // proxies brings nothing (§5.3.1).
    let grid = Arc::new(DataGrid::new(backend, GridConfig::default()));

    let mut spec = Workload::A.spec(20_000, 50_000);
    spec.threads = 4;
    println!(
        "loading {} records ({} fields x {} B)...",
        spec.record_count, spec.field_count, spec.field_len
    );
    let load = run_load(&spec, |_| Client(Arc::clone(&grid)));
    println!("load: {:.2} s ({} records)", load.as_secs_f64(), grid.len());

    println!("running YCSB-A with {} ops on {} threads...", spec.op_count, spec.threads);
    let report = run_workload(&spec, |_| Client(Arc::clone(&grid)));
    println!(
        "throughput: {:.1} Kops/s over {:.2} s",
        report.throughput / 1e3,
        report.completion.as_secs_f64()
    );
    println!("reads:   {}", report.reads.summary().display_us());
    println!("updates: {}", report.updates.summary().display_us());
    let stats = pmem.stats();
    println!(
        "device: {} reads / {} writes / {} pwb / {} pfence",
        stats.reads, stats.writes, stats.pwbs, stats.pfences
    );
}
