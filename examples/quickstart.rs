//! Quickstart — the paper's Figure 3 example, in Rust.
//!
//! A `Simple` persistent object with a string, a persistent counter and a
//! transient field, anchored in the root map, surviving a (simulated)
//! power failure, and explicitly freed when replaced.
//!
//! Run: `cargo run --example quickstart`

use std::sync::Arc;

use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::{persistent_class, JnvmBuilder};
use jnvm_repro::jpdt::{register_jpdt, PString};
use jnvm_repro::pmem::{CrashPolicy, Pmem, PmemConfig};

persistent_class! {
    /// `@Persistent class Simple { PString msg; int x; transient int y; }`
    pub class Simple {
        val x, set_x: i32;
        ref msg, set_msg, update_msg: PString;
    }
}

/// The transient part lives in ordinary volatile Rust state, wrapping the
/// generated persistent class (the paper's `transient int y`).
struct SimpleWithTransient {
    persistent: Simple,
    y: i32,
}

fn main() {
    // JNVM.init("/mnt/pmem/simple", ...): create a simulated NVMM pool.
    // (Pmem::save/load move pools to real files across processes.)
    let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
    let rt = register_jpdt(JnvmBuilder::new())
        .register::<Simple>()
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool creation");

    // if (!JNVM.root.exists("simple")) JNVM.root.put("simple", new Simple(42));
    if !rt.root_exists("simple") {
        // The constructor runs as a failure-atomic block, as the
        // fa="non-private" annotation arranges in the paper.
        rt.fa(|| {
            let s = Simple::alloc_uninit(&rt);
            s.set_x(42);
            let msg = PString::from_str_in(&rt, "Hello, NVMM!").expect("msg");
            s.set_msg(Some(&msg));
            rt.root_put("simple", &s).expect("root put");
        });
    }

    // Simple s = (Simple) JNVM.root.get("simple");
    let s = rt
        .root_get_as::<Simple>("simple")
        .expect("typed lookup")
        .expect("present");
    let mut sw = SimpleWithTransient { persistent: s, y: 0 };

    // s.inc(); s.y = 42;
    rt.fa(|| sw.persistent.set_x(sw.persistent.x() + 1));
    sw.y = 42;

    println!("x   = {}", sw.persistent.x());
    println!("msg = {}", sw.persistent.msg().expect("msg set").to_string_lossy());
    println!("y   = {} (transient)", sw.y);

    // Crash! Everything reachable-and-valid survives; y does not.
    pmem.crash(&CrashPolicy::strict()).expect("crash sim");
    let (rt2, report) = register_jpdt(JnvmBuilder::new())
        .register::<Simple>()
        .open(Arc::clone(&pmem))
        .expect("recovery");
    println!(
        "recovered: {} live objects, {} blocks freed, log replays: {}",
        report.live_objects, report.freed_blocks, report.replayed_logs
    );
    let s2 = rt2
        .root_get_as::<Simple>("simple")
        .expect("typed lookup")
        .expect("survived the crash");
    assert_eq!(s2.x(), 43);
    println!("after crash: x = {}, msg = {:?}", s2.x(), s2.msg().map(|m| m.to_string_lossy()));

    // JNVM.root.put("simple", new Simple(24)); JNVM.free(s.msg); JNVM.free(s);
    rt2.fa(|| {
        let fresh = Simple::alloc_uninit(&rt2);
        fresh.set_x(24);
        rt2.root_put("simple", &fresh).expect("root put");
    });
    if let Some(msg) = s2.msg() {
        rt2.free(msg); // explicit deletion: no runtime GC will do it for us
    }
    rt2.free(s2);
    println!(
        "replaced and freed the old object; heap now has {} free-queue blocks",
        rt2.heap().stats().free_queue_len
    );
}
