//! The low-level interface (Figure 5 of the paper): weak root insertion,
//! batched validation, and a single fence for a whole graph of objects —
//! with crash injection demonstrating both outcomes.
//!
//! Run: `cargo run --example crash_consistency`

use std::sync::Arc;

use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::{persistent_class, Jnvm, JnvmBuilder};
use jnvm_repro::pmem::{CrashPolicy, Pmem, PmemConfig};

persistent_class! {
    /// Figure 5's `LowLevel` object holding a sub-object.
    pub class LowLevel {
        val tag, set_tag: i64;
        ref o, set_o, update_o: LowLevel;
    }
}

fn build_pair(rt: &Jnvm, name: &str, tag: i64) -> LowLevel {
    // new LowLevel(name): allocate this object and a sub-object, flush
    // both, validate the sub-object — and insert into the root map with
    // the *weak* wput. No fence anywhere.
    let a = LowLevel::alloc_uninit(rt);
    a.set_tag(tag);
    let sub = LowLevel::alloc_uninit(rt);
    sub.set_tag(tag * 10);
    sub.pwb();
    sub.validate();
    a.set_o(Some(&sub));
    a.pwb();
    rt.root_wput(name, &a).expect("wput");
    a
}

fn run(fence_before_crash: bool) {
    let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
    let rt = JnvmBuilder::new()
        .register::<LowLevel>()
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");

    let fences_before = pmem.stats().pfences;
    let a = build_pair(&rt, "a", 1);
    let b = build_pair(&rt, "b", 2);
    if fence_before_crash {
        // Figure 5 lines 16-18: ONE pfence, then validate both roots.
        rt.pfence();
        a.validate();
        b.validate();
        rt.pfence(); // persist the validations
    }
    println!(
        "constructed a and b with {} fences",
        pmem.stats().pfences - fences_before
    );

    pmem.crash(&CrashPolicy::strict()).expect("crash");
    let (rt2, report) = JnvmBuilder::new()
        .register::<LowLevel>()
        .open(Arc::clone(&pmem))
        .expect("recovery");
    let a2 = rt2.root_get_as::<LowLevel>("a").expect("typed");
    let b2 = rt2.root_get_as::<LowLevel>("b").expect("typed");
    if fence_before_crash {
        let a2 = a2.expect("a survived");
        println!(
            "after crash: a.tag={}, a.o.tag={}, b present: {}",
            a2.tag(),
            a2.o().expect("sub-object").tag(),
            b2.is_some()
        );
    } else {
        println!(
            "after crash without the fence: a present: {}, b present: {} \
             (recovery freed {} blocks — all-or-nothing, no partial state)",
            a2.is_some(),
            b2.is_some(),
            report.freed_blocks
        );
        assert!(a2.is_none() && b2.is_none());
    }
}

fn main() {
    println!("--- with the single batched fence (Figure 5) ---");
    run(true);
    println!("\n--- crash before the fence: everything is discarded ---");
    run(false);
}
