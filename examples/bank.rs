//! A persistent bank (the TPC-B-like application of §5.3.3): transfers in
//! failure-atomic blocks, a crash in the middle of a burst, and a recovery
//! that proves no money was created or destroyed.
//!
//! Run: `cargo run --example bank`

use std::sync::Arc;

use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::JnvmBuilder;
use jnvm_repro::pmem::{CrashPolicy, Pmem, PmemConfig};
use jnvm_repro::tpcb::{register_tpcb, Bank, JnvmBank};

const ACCOUNTS: u64 = 1_000;
const INITIAL: i64 = 100;

fn main() {
    let pmem = Pmem::new(PmemConfig::crash_sim(256 << 20));
    let rt = register_tpcb(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let bank = JnvmBank::create(&rt, ACCOUNTS, INITIAL).expect("bank");
    println!(
        "opened bank: {} accounts x {} = total {}",
        bank.len(),
        INITIAL,
        bank.total()
    );

    // A burst of randomish transfers, each failure-atomic.
    let mut x = 0x243f6a8885a308d3u64;
    for _ in 0..5_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let a = x % ACCOUNTS;
        let b = (x >> 17) % ACCOUNTS;
        if a != b {
            bank.transfer(a, b, (x % 50) as i64);
        }
    }
    println!("after 5000 transfers, total = {} (invariant)", bank.total());
    assert_eq!(bank.total(), ACCOUNTS as i64 * INITIAL);

    // Power failure — adversarial: unflushed lines may or may not survive.
    drop(bank);
    pmem.crash(&CrashPolicy::adversarial(7)).expect("crash");
    println!("crash!");

    let (rt2, report) = register_tpcb(JnvmBuilder::new())
        .open(Arc::clone(&pmem))
        .expect("recovery");
    println!(
        "recovered in {:?} (log replays: {}, aborted: {}, live objects: {})",
        report.gc_time + report.log_time,
        report.replayed_logs,
        report.abandoned_logs,
        report.live_objects
    );
    let bank2 = JnvmBank::open(&rt2).expect("reopen bank");
    println!("after recovery, total = {}", bank2.total());
    assert_eq!(
        bank2.total(),
        ACCOUNTS as i64 * INITIAL,
        "failure-atomic transfers preserve the sum"
    );
    println!("money conserved across the crash — transfers were atomic.");
}
