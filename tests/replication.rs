//! Replicated group commit under crash injection, below the wire layer.
//!
//! Two shards, each a [`ReplicaSet`] of two full independent stacks
//! (device + heap + backend + grid). Workers drive deterministic chunks
//! of writes through [`commit_writes_replicated`] — backup first, then
//! primary, the same ordering the server's committer uses — and a crash
//! is armed on one replica's device:
//!
//! * **primary crash** → the worker promotes the backup in place and
//!   keeps committing solo. Every chunk that returned (was "acked") must
//!   be fully present and untorn on the survivor after recovery — the
//!   acked ⇒ durable-on-a-survivor contract — and the sweep must show
//!   post-promotion acks (the liveness witness).
//! * **backup crash** → the worker degrades to solo mode on the primary;
//!   nothing acked is lost and no promotion happens.
//!
//! After a failover point the crashed primary's image is audited against
//! the promoted backup with [`divergent_keys`]: chunks acked *before*
//! the crash must be identical on both images, chunks acked *after*
//! promotion must exist only on the backup.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use jnvm_repro::faultsim::{replicated_torture_point, strided_points};
use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::{divergent_keys, JnvmBuilder, ReplicaSet};
use jnvm_repro::kvstore::{
    commit_writes_replicated, register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend,
    Record, ReplLag, ReplicaStack, WriteOp,
};
use jnvm_repro::lincheck::{self, ClientRecorder, Clock, History, OpKind, Outcome};
use jnvm_repro::pmem::{
    catch_crash, silence_crash_panics, FaultPlan, Pmem, PmemConfig,
};

const SHARDS: usize = 2;
const CRASH_SHARD: usize = 0;
const CHUNKS: usize = 12;

// ---------------------------------------------------------------- traffic

fn key(shard: usize, c: usize, i: usize) -> String {
    format!("s{shard}-c{c:03}-k{i}")
}

fn set_value(c: usize, i: usize) -> Vec<u8> {
    format!("v{c:03}:{i}").into_bytes()
}

fn field_value(c: usize) -> Vec<u8> {
    format!("f{c:03}").into_bytes()
}

/// One chunk = one replicated commit group: four SETs, then a SETF on
/// key 3 and a DEL of key 0, all in op order. Keys are unique per chunk,
/// so an acked chunk has exactly one final state to check.
fn chunk_ops(shard: usize, c: usize) -> Vec<WriteOp> {
    let mut ops: Vec<WriteOp> = (0..4)
        .map(|i| WriteOp::Set(Record::ycsb(&key(shard, c, i), &[set_value(c, i)])))
        .collect();
    ops.push(WriteOp::SetField {
        key: key(shard, c, 3),
        field: 0,
        value: field_value(c),
    });
    ops.push(WriteOp::Del(key(shard, c, 0)));
    ops
}

/// Assert an acked chunk's exact final state on a recovered image.
fn expect_chunk(grid: &DataGrid, shard: usize, c: usize) {
    assert!(
        grid.read(&key(shard, c, 0)).is_none(),
        "shard {shard} chunk {c}: deleted key resurrected"
    );
    for i in [1usize, 2] {
        let rec = grid
            .read(&key(shard, c, i))
            .unwrap_or_else(|| panic!("shard {shard} chunk {c}: acked key {i} lost"));
        assert_eq!(rec.fields[0].1, set_value(c, i), "shard {shard} chunk {c} key {i}");
    }
    let rec = grid
        .read(&key(shard, c, 3))
        .unwrap_or_else(|| panic!("shard {shard} chunk {c}: acked key 3 lost"));
    assert_eq!(rec.fields[0].1, field_value(c), "shard {shard} chunk {c} SETF");
}

// ----------------------------------------------------------------- stacks

struct Cell {
    pmem: Arc<Pmem>,
    _rt: jnvm_repro::jnvm::Jnvm,
    be: Arc<JnvmBackend>,
    grid: DataGrid,
}

fn cell(label: &str) -> Cell {
    let pmem = Pmem::new(PmemConfig::crash_sim(24 << 20).with_label(label));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let be = Arc::new(JnvmBackend::create(&rt, 4, true).expect("backend"));
    let grid = DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    );
    Cell { pmem, _rt: rt, be, grid }
}

/// Reopen one replica's pool and return a readable stack.
fn reopen(pmem: &Arc<Pmem>) -> (jnvm_repro::jnvm::Jnvm, Arc<JnvmBackend>, DataGrid) {
    let (rt, _) = register_kvstore(JnvmBuilder::new())
        .open(Arc::clone(pmem))
        .expect("reopen replica");
    let be = Arc::new(JnvmBackend::open(&rt, true).expect("backend reopen"));
    let grid = DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    );
    (rt, be, grid)
}

/// Ack log + transition counters. Lives behind an `Arc` so verification
/// can still read it after the harness drops the workload context.
#[derive(Default)]
struct Log {
    /// Chunk ids acked before any promotion, per shard.
    acked_pre: Vec<Mutex<Vec<usize>>>,
    /// Chunk ids acked while running on a promoted backup, per shard.
    acked_post: Vec<Mutex<Vec<usize>>>,
    promotions: AtomicU64,
    degrades: AtomicU64,
    /// Shared history clock + one op recorder per shard worker, for the
    /// post-recovery durable-linearizability check.
    clock: Clock,
    recorders: Vec<Mutex<ClientRecorder>>,
}

struct Ctx {
    sets: Vec<ReplicaSet<Cell>>,
    lags: Vec<ReplLag>,
    log: Arc<Log>,
}

fn setup(log: &Arc<Log>) -> (Vec<Vec<Arc<Pmem>>>, Ctx) {
    let mut sets = Vec::new();
    let mut pmems = Vec::new();
    for s in 0..SHARDS {
        let primary = cell(&format!("s{s}/primary"));
        let backup = cell(&format!("s{s}/backup"));
        pmems.push(vec![Arc::clone(&primary.pmem), Arc::clone(&backup.pmem)]);
        sets.push(ReplicaSet::new(vec![primary, backup]));
    }
    let ctx = Ctx {
        sets,
        lags: (0..SHARDS).map(|_| ReplLag::new()).collect(),
        log: Arc::clone(log),
    };
    (pmems, ctx)
}

/// Per-shard worker: commit every chunk through the replica set, failing
/// over (or degrading) when a device dies mid-commit. A chunk counts as
/// acked only when `commit_writes_replicated` returns — the crashing
/// chunk is never acked, conservatively, even though a primary crash
/// leaves it durable on the backup.
/// The history-capture view of one [`WriteOp`].
fn captured_kind(op: &WriteOp) -> OpKind {
    match op {
        WriteOp::Set(rec) => OpKind::Set(rec.fields.iter().map(|(_, v)| v.clone()).collect()),
        WriteOp::SetField { field, value, .. } => OpKind::SetField(*field, value.clone()),
        WriteOp::Del(_) => OpKind::Del,
    }
}

fn drive(shard: usize, ctx: &Ctx) {
    let set = &ctx.sets[shard];
    for c in 0..CHUNKS {
        let ops = chunk_ops(shard, c);
        // Invoke every op of the chunk before the commit touches a device:
        // a crash mid-chunk leaves all of them Indeterminate (they may
        // linearize — the backup may hold them — or vanish).
        let toks: Vec<_> = {
            let mut rec = ctx.log.recorders[shard].lock().expect("recorder lock");
            ops.iter().map(|op| rec.invoke(op.key(), captured_kind(op))).collect()
        };
        let committed = catch_crash(|| {
            let active = set.active();
            let backup = set.backup().map(|b| ReplicaStack {
                grid: &b.grid,
                be: &b.be,
            });
            commit_writes_replicated(
                ReplicaStack {
                    grid: &active.grid,
                    be: &active.be,
                },
                backup,
                &ops,
                &ctx.lags[shard],
            )
        });
        match committed {
            Ok(out) => {
                {
                    let mut rec = ctx.log.recorders[shard].lock().expect("recorder lock");
                    for (tok, (op, applied)) in
                        toks.into_iter().zip(ops.iter().zip(&out.results))
                    {
                        let outcome = match op {
                            WriteOp::Set(_) => Outcome::Ok,
                            _ if *applied => Outcome::Ok,
                            _ => Outcome::NotFound,
                        };
                        rec.resolve(tok, outcome);
                    }
                }
                let bucket = if set.promotions() > 0 {
                    &ctx.log.acked_post[shard]
                } else {
                    &ctx.log.acked_pre[shard]
                };
                bucket.lock().expect("log lock").push(c);
            }
            Err(_) => {
                // Which device froze decides the transition: the active
                // one means fail over, the backup means run solo.
                if set.active().pmem.faults_frozen() {
                    if set.promote().is_none() {
                        return; // no redundancy left
                    }
                    ctx.log.promotions.fetch_add(1, Ordering::Relaxed);
                } else {
                    set.degrade();
                    ctx.log.degrades.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Size of the crash-point space on the chosen device: a count pass over
/// the identical deterministic workload.
fn op_space(crash_replica: usize) -> u64 {
    let log = Arc::new(new_log());
    let (pmems, ctx) = setup(&log);
    let dev = Arc::clone(&pmems[CRASH_SHARD][crash_replica]);
    dev.arm_faults(FaultPlan::count());
    for s in 0..SHARDS {
        drive(s, &ctx);
    }
    drop(ctx);
    dev.disarm_faults()
}

fn new_log() -> Log {
    let clock = Clock::new();
    Log {
        acked_pre: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        acked_post: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        recorders: (0..SHARDS)
            .map(|s| Mutex::new(ClientRecorder::new(&clock, s)))
            .collect(),
        clock,
        ..Log::default()
    }
}

// ------------------------------------------------------------ the sweeps

fn run_point(point: u64, crash_replica: usize) -> Arc<Log> {
    let log = Arc::new(new_log());
    let vlog = Arc::clone(&log);
    let slog = Arc::clone(&log);
    replicated_torture_point(
        point,
        FaultPlan::count(),
        CRASH_SHARD,
        crash_replica,
        move || setup(&slog),
        drive,
        move |pmems, out| {
            let promoted = out.injected
                && out.crash_replica == 0
                && vlog.promotions.load(Ordering::Relaxed) > 0;
            // Assemble the captured history; the crash barrier precedes
            // every post-recovery observation appended below.
            let mut hist = {
                let recs: Vec<ClientRecorder> = vlog
                    .recorders
                    .iter()
                    .enumerate()
                    .map(|(s, m)| {
                        std::mem::replace(
                            &mut *m.lock().expect("recorder lock"),
                            ClientRecorder::new(&vlog.clock, s),
                        )
                    })
                    .collect();
                History::collect(vlog.clock.clone(), recs)
            };
            hist.mark_crash();
            let touched: std::collections::HashSet<String> =
                hist.keys().iter().map(|k| k.to_string()).collect();
            for (s, shard_pmems) in pmems.iter().enumerate().take(SHARDS) {
                let survivor = usize::from(s == out.crash_shard && promoted);
                let (_rt, _be, grid) = reopen(&shard_pmems[survivor]);
                let pre = vlog.acked_pre[s].lock().expect("log lock").clone();
                let post = vlog.acked_post[s].lock().expect("log lock").clone();
                for &c in pre.iter().chain(&post) {
                    expect_chunk(&grid, s, c);
                }
                // The survivor's recovered state, fed to the checker as
                // post-recovery reads of every key this shard's worker
                // touched.
                for c in 0..CHUNKS {
                    for i in 0..4 {
                        let k = key(s, c, i);
                        if touched.contains(&k) {
                            let state = grid
                                .read(&k)
                                .map(|r| r.fields.into_iter().map(|(_, v)| v).collect());
                            hist.observe(&k, state);
                        }
                    }
                }
                if s != out.crash_shard {
                    assert_eq!(
                        pre.len(),
                        CHUNKS,
                        "untouched shard {s} must ack everything (point {point})"
                    );
                }
                // Post-failover audit: the crashed primary vs the
                // promoted backup, per key.
                if s == out.crash_shard && promoted {
                    let (_prt, pbe, _pgrid) = reopen(&shard_pmems[0]);
                    let sbe = Arc::clone(&_be);
                    let keys: Vec<String> = (0..CHUNKS)
                        .flat_map(|c| (0..4).map(move |i| key(s, c, i)))
                        .collect();
                    let div = divergent_keys(
                        keys,
                        |k: &String| pbe.read(k),
                        |k: &String| sbe.read(k),
                    );
                    for &c in &pre {
                        for i in 0..4 {
                            assert!(
                                !div.contains(&key(s, c, i)),
                                "chunk {c} acked before the crash diverged at key {i} \
                                 (point {point})"
                            );
                        }
                    }
                    for &c in &post {
                        for i in [1usize, 2, 3] {
                            assert!(
                                div.contains(&key(s, c, i)),
                                "chunk {c} acked after promotion should only exist on \
                                 the backup (key {i}, point {point})"
                            );
                        }
                    }
                }
            }
            // The whole run — acked chunks, the crashing chunk's
            // indeterminate ops, and the recovered images — must be one
            // durably linearizable history.
            if let Err(v) = lincheck::check(&hist) {
                panic!("point {point}: durable-linearizability violation: {v}");
            }
        },
    );
    log
}

#[test]
fn acked_chunks_survive_primary_crash_and_failover() {
    silence_crash_panics();
    let total = op_space(0);
    assert!(total > 0, "count pass saw no device ops");
    let mut promoted_points = 0u32;
    let mut post_acks = 0usize;
    for point in strided_points(total, 8) {
        let log = run_point(point, 0);
        promoted_points += u32::from(log.promotions.load(Ordering::Relaxed) > 0);
        post_acks += log.acked_post[CRASH_SHARD].lock().expect("log lock").len();
    }
    // Liveness: the sweep must actually exercise failover, and a promoted
    // shard must keep acking.
    assert!(promoted_points > 0, "no point promoted — sweep never hit the primary");
    assert!(post_acks > 0, "no chunk was ever acked after promotion");
}

#[test]
fn backup_crash_degrades_without_losing_acked_chunks() {
    silence_crash_panics();
    let total = op_space(1);
    assert!(total > 0, "count pass saw no device ops");
    let mut degraded_points = 0u32;
    for point in strided_points(total, 5) {
        let log = run_point(point, 1);
        assert_eq!(
            log.promotions.load(Ordering::Relaxed),
            0,
            "a backup crash must never promote (point {point})"
        );
        degraded_points += u32::from(log.degrades.load(Ordering::Relaxed) > 0);
    }
    assert!(degraded_points > 0, "sweep never hit the backup");
}

/// Exhaustive-leaning variant for the torture CI job.
#[test]
#[ignore = "wide sweep; run with --ignored in the torture job"]
fn replication_wide_sweep() {
    silence_crash_panics();
    let total = op_space(0);
    for point in strided_points(total, 64) {
        run_point(point, 0);
    }
    let total_b = op_space(1);
    for point in strided_points(total_b, 24) {
        run_point(point, 1);
    }
}
