//! End-to-end smoke tests of the evaluation pipeline: a miniature YCSB run
//! over every backend, a miniature recovery timeline, and the motivation
//! simulators — everything the figure regenerators do, at toy scale.

use std::sync::Arc;
use std::time::Duration;

use jnvm_repro::gcsim::{CachedFsStore, FsCost, GenConfig, RedisLikeStore};
use jnvm_repro::kvstore::{CostModel, DataGrid, Record};
use jnvm_repro::tpcb::{run_timeline, BankKind, TimelineConfig};
use jnvm_repro::ycsb::{run_load, run_workload, KvClient, Workload};

struct Client(Arc<DataGrid>);

impl KvClient for Client {
    fn read(&mut self, key: &str) -> bool {
        self.0.read(key).is_some()
    }
    fn update(&mut self, key: &str, field: usize, value: &[u8]) -> bool {
        self.0.update_field(key, field, value)
    }
    fn insert(&mut self, key: &str, fields: &[Vec<u8>]) -> bool {
        self.0.insert(&Record::ycsb(key, fields))
    }
    fn rmw(&mut self, key: &str, field: usize, value: &[u8]) -> bool {
        self.0.rmw(key, field, value)
    }
}

// The bench crate owns the full grid construction; the smoke test builds
// the two extremes by hand to avoid a dev-dependency cycle.
fn jnvm_grid(records: u64) -> Arc<DataGrid> {
    use jnvm_repro::heap::HeapConfig;
    use jnvm_repro::jnvm::JnvmBuilder;
    use jnvm_repro::kvstore::{register_kvstore, GridConfig, JnvmBackend};
    use jnvm_repro::pmem::{Pmem, PmemConfig};
    let pmem = Pmem::new(PmemConfig::perf(records * 8192 + (64 << 20)));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(pmem, HeapConfig::default())
        .expect("pool");
    let be = Arc::new(JnvmBackend::create(&rt, 8, false).expect("backend"));
    Arc::new(DataGrid::new(be, GridConfig::default()))
}

fn fs_grid(records: u64) -> Arc<DataGrid> {
    use jnvm_repro::kvstore::{FsBackend, GridConfig};
    use jnvm_repro::pmem::{Pmem, PmemConfig};
    let pmem = Pmem::new(PmemConfig::perf(records * 4096 + (16 << 20)));
    let be = Arc::new(FsBackend::new(pmem, 2048, CostModel::free()));
    Arc::new(DataGrid::new(
        be,
        GridConfig {
            cache_capacity: records as usize / 10,
            ..GridConfig::default()
        },
    ))
}

#[test]
fn every_workload_runs_over_jnvm_and_fs_grids() {
    for make in [jnvm_grid as fn(u64) -> Arc<DataGrid>, fs_grid] {
        for w in Workload::ALL {
            let grid = make(200);
            let mut spec = w.spec(200, 400);
            spec.threads = 2;
            run_load(&spec, |_| Client(Arc::clone(&grid)));
            assert_eq!(grid.len(), 200, "workload {w:?} load");
            let report = run_workload(&spec, |_| Client(Arc::clone(&grid)));
            assert_eq!(report.ops, 400, "workload {w:?} ops");
            assert!(report.throughput > 0.0);
        }
    }
}

#[test]
fn timeline_smoke_all_designs() {
    let cfg = TimelineConfig {
        accounts: 500,
        threads: 2,
        run_before: Duration::from_millis(300),
        run_after: Duration::from_millis(300),
        bucket: Duration::from_millis(50),
        pool_bytes: 32 << 20,
        costs: CostModel::free(),
        ..TimelineConfig::default()
    };
    for kind in [
        BankKind::Volatile,
        BankKind::Fs,
        BankKind::Jpfa,
        BankKind::JpfaNogc,
    ] {
        let r = run_timeline(kind, &cfg);
        assert!(
            r.nominal_before > 0.0,
            "{kind:?} served requests before the crash"
        );
        assert!(r.restart_duration >= 0.0);
        if kind != BankKind::Volatile {
            assert!(r.money_conserved, "{kind:?} conserves money");
        }
    }
}

#[test]
fn motivation_simulators_scale_as_claimed() {
    // Figure 2 mechanism: GC marking per pass scales with the dataset.
    let run = |records: u32| {
        let mut s = RedisLikeStore::new(10, 100, 200_000);
        for i in 0..records {
            s.insert(&format!("k{i}"));
        }
        for i in 0..3000u32 {
            s.rmw(&format!("k{}", i % records), i as usize);
            s.alloc_temp(64);
        }
        let (passes, visited) = s.gc_stats();
        visited / passes.max(1)
    };
    let small = run(200);
    let big = run(2000);
    assert!(big > small * 5, "per-pass GC work: {small} vs {big}");

    // Figure 1 mechanism: full collections cost tracks the cache size.
    let gc_time = |cache: usize| {
        let mut s = CachedFsStore::new(
            cache,
            10,
            100,
            GenConfig {
                eden_bytes: 256 << 10,
                old_trigger_factor: 1.0,
                min_old_bytes: 1 << 20,
                old_trigger_bytes: 1 << 20,
                evac_ns_per_obj: 200,
            },
            FsCost::free(),
        );
        s.temps_per_op = 2;
        s.survivor_window = 500;
        for i in 0..2000u32 {
            s.read(&format!("k{}", i % 1000));
        }
        for i in 0..4000u32 {
            s.rmw(&format!("k{}", i % 1000));
        }
        s.gc_time()
    };
    let small = gc_time(10);
    let large = gc_time(1000);
    assert!(
        large > small,
        "GC time grows with the cache: {small:?} vs {large:?}"
    );
}
