//! Cross-crate crash-consistency tests: randomized crash points,
//! adversarial line-eviction policies, and recovery invariants — the
//! correctness core of the reproduction.

use std::sync::Arc;

use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::{persistent_class, Jnvm, JnvmBuilder, PObject, RecoveryMode};
use jnvm_repro::jpdt::{register_jpdt, PBytes, PStringHashMap};
use jnvm_repro::pmem::{CrashPolicy, Pmem, PmemConfig};

use proptest::prelude::*;

persistent_class! {
    pub class Pair {
        val left, set_left: i64;
        val right, set_right: i64;
    }
}

fn build(pmem: &Arc<Pmem>) -> Jnvm {
    register_jpdt(JnvmBuilder::new())
        .register::<Pair>()
        .create(Arc::clone(pmem), HeapConfig::default())
        .expect("pool")
}

fn reopen(pmem: &Arc<Pmem>) -> (Jnvm, jnvm_repro::jnvm::RecoveryReport) {
    register_jpdt(JnvmBuilder::new())
        .register::<Pair>()
        .open(Arc::clone(pmem))
        .expect("recovery")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever subset of unflushed cache lines survives the crash, a pair
    /// mutated only inside failure-atomic blocks keeps its sum invariant.
    #[test]
    fn fa_pair_invariant_under_adversarial_crashes(
        seed in 0u64..5000,
        ops in 1usize..30,
        crash_after in 0usize..30,
    ) {
        let pmem = Pmem::new(PmemConfig::crash_sim(4 << 20));
        let rt = build(&pmem);
        let p = rt.fa(|| {
            let p = Pair::alloc_uninit(&rt);
            p.set_left(1000);
            p.set_right(1000);
            rt.root_put("pair", &p).expect("root");
            p
        });
        for i in 0..ops.min(crash_after) {
            rt.fa(|| {
                p.set_left(p.left() - i as i64);
                p.set_right(p.right() + i as i64);
            });
        }
        pmem.crash(&CrashPolicy { evict_probability: 0.5, seed }).expect("crash");
        let (rt2, _) = reopen(&pmem);
        let p2 = rt2.root_get_as::<Pair>("pair").expect("typed").expect("pair survived");
        prop_assert_eq!(p2.left() + p2.right(), 2000);
    }

    /// A persistent map keeps a consistent key set across adversarial
    /// crashes: every fenced insert survives, and recovery never produces
    /// a key with a dangling value.
    #[test]
    fn map_integrity_under_adversarial_crashes(seed in 0u64..5000, n in 1usize..40) {
        let pmem = Pmem::new(PmemConfig::crash_sim(16 << 20));
        let rt = build(&pmem);
        let map = PStringHashMap::new(&rt).expect("map");
        rt.root_put("map", &map).expect("root");
        for i in 0..n {
            let v = PBytes::new(&rt, format!("value-{i}").as_bytes()).expect("blob");
            map.put(format!("key-{i}"), v.addr()).expect("put");
        }
        pmem.crash(&CrashPolicy { evict_probability: 0.5, seed }).expect("crash");
        let (rt2, _) = reopen(&pmem);
        let map2 = rt2
            .root_get_as::<PStringHashMap>("map")
            .expect("typed")
            .expect("map survived");
        // Every put was fenced before returning, so every key must be there
        // with intact content.
        prop_assert_eq!(map2.len(), n);
        for i in 0..n {
            let v = map2.get(&format!("key-{i}"));
            prop_assert!(v.is_some(), "key-{} lost", i);
            let blob = rt2.read_pobject::<PBytes>(v.expect("present")).expect("typed blob");
            prop_assert_eq!(blob.to_vec(), format!("value-{i}").into_bytes());
        }
    }

    /// Recovery is idempotent: crashing again right after recovery (before
    /// any new work) recovers the same state.
    #[test]
    fn recovery_is_idempotent(seed in 0u64..1000) {
        let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
        let rt = build(&pmem);
        rt.fa(|| {
            let p = Pair::alloc_uninit(&rt);
            p.set_left(7);
            p.set_right(11);
            rt.root_put("p", &p).expect("root");
        });
        pmem.crash(&CrashPolicy { evict_probability: 0.3, seed }).expect("crash 1");
        let (rt2, _) = reopen(&pmem);
        let first: Option<(i64, i64)> = rt2
            .root_get_as::<Pair>("p")
            .expect("typed")
            .map(|p| (p.left(), p.right()));
        drop(rt2);
        pmem.crash(&CrashPolicy::strict()).expect("crash 2");
        let (rt3, _) = reopen(&pmem);
        let second: Option<(i64, i64)> = rt3
            .root_get_as::<Pair>("p")
            .expect("typed")
            .map(|p| (p.left(), p.right()));
        prop_assert_eq!(first, second);
    }
}

#[test]
fn repeated_crash_reopen_cycles_preserve_and_reclaim() {
    let pmem = Pmem::new(PmemConfig::crash_sim(32 << 20));
    let rt = build(&pmem);
    let map = PStringHashMap::new(&rt).expect("map");
    rt.root_put("m", &map).expect("root");
    let mut expected: Vec<(String, Vec<u8>)> = Vec::new();
    let mut rt = rt;
    let mut map = map;
    for round in 0..6 {
        // Mutate: add two keys, remove one (freeing its value).
        for j in 0..2 {
            let k = format!("r{round}-{j}");
            let v = PBytes::new(&rt, k.as_bytes()).expect("blob");
            map.put(k.clone(), v.addr()).expect("put");
            expected.push((k.clone(), k.into_bytes()));
        }
        if expected.len() > 3 {
            let (k, _) = expected.remove(0);
            let old = map.remove(&k).expect("present");
            rt.free_addr(old);
            rt.pmem().pfence();
        }
        pmem.crash(&CrashPolicy::adversarial(round)).expect("crash");
        let (nrt, report) = reopen(&pmem);
        assert!(report.live_objects > 0);
        rt = nrt;
        map = rt
            .root_get_as::<PStringHashMap>("m")
            .expect("typed")
            .expect("map survived");
        assert_eq!(map.len(), expected.len(), "round {round}");
        for (k, v) in &expected {
            let addr = map.get(k).unwrap_or_else(|| panic!("round {round}: {k} missing"));
            assert_eq!(&rt.read_pobject::<PBytes>(addr).expect("blob").to_vec(), v);
        }
    }
}

#[test]
fn nogc_and_full_recovery_agree_on_fa_only_state() {
    // When every allocation is published within its failure-atomic block,
    // the cheap header-scan recovery is equivalent to the full GC.
    let mk = || {
        let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
        let rt = build(&pmem);
        for i in 0..10 {
            rt.fa(|| {
                let p = Pair::alloc_uninit(&rt);
                p.set_left(i);
                p.set_right(-i);
                rt.root_put(&format!("p{i}"), &p).expect("root");
            });
        }
        pmem.crash(&CrashPolicy::strict()).expect("crash");
        pmem
    };
    let read_all = |rt: &Jnvm| -> Vec<(i64, i64)> {
        (0..10)
            .map(|i| {
                let p = rt
                    .root_get_as::<Pair>(&format!("p{i}"))
                    .expect("typed")
                    .expect("present");
                (p.left(), p.right())
            })
            .collect()
    };
    let pmem_a = mk();
    let (rt_full, _) = register_jpdt(JnvmBuilder::new())
        .register::<Pair>()
        .open_with_mode(Arc::clone(&pmem_a), RecoveryMode::Full)
        .expect("full");
    let pmem_b = mk();
    let (rt_scan, _) = register_jpdt(JnvmBuilder::new())
        .register::<Pair>()
        .open_with_mode(Arc::clone(&pmem_b), RecoveryMode::HeaderScanOnly)
        .expect("scan");
    assert_eq!(read_all(&rt_full), read_all(&rt_scan));
}
