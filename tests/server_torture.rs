//! End-to-end tests for `jnvm-server`: group-commit fence amortization
//! under pipelined load, and the kill-during-traffic sweep (crash injected
//! while ≥4 pipelined connections are live, reopen, verify every acked
//! write survived and every record is untorn).
//!
//! The default suite runs a time-bounded smoke plus a small strided sweep;
//! the `--ignored` test widens the sweep for the scheduled torture job.
//!
//! The pool-shard count of the torture configs honors `JNVM_SHARDS`
//! (default 1) and the replica count honors `JNVM_REPLICAS` (default 1,
//! max 2), so CI runs the same sweeps over the degenerate one-pool
//! server, the sharded engine, and the replicated engine; the dedicated
//! sharded/replicated tests below pin their contracts at fixed counts
//! regardless.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use jnvm_repro::faultsim::strided_points;
use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::JnvmBuilder;
use jnvm_repro::kvstore::{
    register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend, Record,
};
use jnvm_repro::pmem::{Pmem, PmemConfig};
use jnvm_repro::server::{
    encode_request, handshake, kill_during_traffic, parse_reply, promotion_read_probe,
    run_loadgen, traffic_op_count, LoadgenConfig, Reply, Request, Server, ServerConfig,
    TortureConfig,
};

/// Pool shards for the shared sweeps: `JNVM_SHARDS` or 1.
fn pool_shards_from_env() -> usize {
    std::env::var("JNVM_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Replicas per shard for the shared sweeps: `JNVM_REPLICAS` or 1.
fn pool_replicas_from_env() -> usize {
    std::env::var("JNVM_REPLICAS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| (1..=2).contains(&n))
        .unwrap_or(1)
}

fn small_torture() -> TortureConfig {
    TortureConfig {
        load: LoadgenConfig {
            conns: 4,
            ops_per_conn: 40,
            pipeline: 8,
            fields: 3,
            value_size: 48,
            seed: 0,
        },
        pool_shards: pool_shards_from_env(),
        replicas: pool_replicas_from_env(),
        ..TortureConfig::default()
    }
}

/// Acked ⇒ durable must come *cheap*: under pipelined load the committer
/// groups staged writes behind shared fences, so ordering points
/// (pfences + psyncs) stay well below one per acked write. A server that
/// fenced every write individually pays ≥ 3× more and fails this.
#[test]
fn group_commit_amortizes_fences_under_pipelined_load() {
    let pmem = Pmem::new(PmemConfig::crash_sim(256 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .unwrap();
    let be = Arc::new(JnvmBackend::create(&rt, 16, true).unwrap());
    let grid = Arc::new(DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    ));
    let server = Server::start(
        Arc::clone(&grid),
        Arc::clone(&be),
        Arc::clone(&pmem),
        ServerConfig::default(),
    )
    .unwrap();
    let before = pmem.stats();
    let load = run_loadgen(
        server.addr(),
        &LoadgenConfig {
            conns: 4,
            ops_per_conn: 200,
            pipeline: 16,
            ..LoadgenConfig::default()
        },
    );
    let stats = server.stats();
    server.shutdown();
    let d = pmem.stats().delta(&before);

    assert_eq!(load.errors, 0, "crash-free traffic must not error");
    assert!(
        load.acked_writes >= 700,
        "expected ~720 acked writes, got {}",
        load.acked_writes
    );
    assert_eq!(stats.acked_writes, load.acked_writes);
    assert!(stats.groups > 0 && stats.batches > 0);
    assert!(
        d.ordering_points() < load.acked_writes,
        "group commit must amortize fences: {} ordering points for {} acked \
         writes ({} groups in {} batches)",
        d.ordering_points(),
        load.acked_writes,
        stats.groups,
        stats.batches
    );
    drop(rt);
}

/// A crash point past the end of the op stream: traffic completes, nothing
/// injects, and the recovery verifier must accept the full image — every
/// acked write present and every record untorn after reopen.
#[test]
fn uninjected_run_reopens_with_every_acked_write() {
    let cfg = small_torture();
    let report = kill_during_traffic(u64::MAX, &cfg).expect("verification");
    assert!(!report.injected);
    assert_eq!(report.server.failed_writes, 0);
    assert!(report.acked_writes > 0);
    assert!(report.keys_checked > 0);
}

/// Strided kill sweep: inject a crash at several points across the
/// device-op stream while 4 pipelined connections are live, then reopen
/// and verify. Bounded for the default suite; the `--ignored` variant
/// sweeps wider.
#[test]
fn kill_during_traffic_strided_sweep() {
    let cfg = small_torture();
    let total = traffic_op_count(&cfg);
    assert!(total > 1000, "traffic too small to be interesting: {total}");
    let mut injected = 0;
    for point in strided_points(total, 5) {
        let report =
            kill_during_traffic(point, &cfg).unwrap_or_else(|e| panic!("{e}"));
        if report.injected {
            injected += 1;
        }
    }
    assert!(injected >= 3, "sweep barely injected: {injected}/5 points");
}

/// The strided kill sweep again, but the post-kill reopen recovers on 4
/// worker threads: the acked-durability and untorn-record verdicts must
/// not depend on the recovery thread count (the full bit-level proof is
/// `tests/recovery_equivalence.rs`; this holds the server wiring to it).
#[test]
fn kill_during_traffic_recovers_in_parallel() {
    let cfg = TortureConfig {
        recovery_threads: 4,
        ..small_torture()
    };
    let total = traffic_op_count(&cfg);
    let mut injected = 0;
    for point in strided_points(total, 3) {
        let report = kill_during_traffic(point, &cfg).unwrap_or_else(|e| panic!("{e}"));
        if report.injected {
            injected += 1;
        }
    }
    assert!(injected >= 2, "sweep barely injected: {injected}/3 points");
}

/// The headline isolation test: a 4-shard server, crash armed on one
/// shard's device, fired early in the traffic. The dead shard must refuse
/// service (its keys answer `Err`), the other three must keep committing
/// — visible as `Ok` acks *after* connections saw their first error — and
/// after recovering all four pools every acked write must be present and
/// untorn, including on the shards that never crashed.
#[test]
fn sharded_kill_isolates_the_crashed_shard() {
    let cfg = TortureConfig {
        pool_shards: 4,
        // Unreplicated on purpose: with a backup the shard would promote
        // instead of dying — that contract has its own test below.
        replicas: 1,
        crash_shard: 1,
        recovery_threads: 2,
        ..small_torture()
    };
    let total = traffic_op_count(&cfg);
    assert!(total > 200, "crash shard's op stream too small: {total}");
    // Early point: most of the traffic still ahead when the shard dies.
    let report = kill_during_traffic(total / 10, &cfg).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.injected, "point {} of {total} must fire", total / 10);
    assert_eq!(report.server.shards, 4);
    assert_eq!(
        report.server.dead_shards, 1,
        "exactly the crash shard must die; the rest keep serving"
    );
    assert!(
        report.acked_after_first_error > 0,
        "non-crashed shards must keep acking after the first error reply \
         ({} acked total)",
        report.acked_writes
    );
    assert!(report.acked_writes > 0);
    assert!(report.keys_checked > 0);
}

/// Crash-free sharded traffic: a 4-shard server under the standard load
/// must ack everything, error nothing, and report per-shard counters that
/// sum coherently (groups/batches spread over multiple committers).
#[test]
fn sharded_server_serves_crash_free_traffic() {
    let cfg = TortureConfig {
        pool_shards: 4,
        ..small_torture()
    };
    let report = kill_during_traffic(u64::MAX, &cfg).expect("verification");
    assert!(!report.injected);
    assert_eq!(report.server.shards, 4);
    assert_eq!(report.server.dead_shards, 0);
    assert_eq!(report.server.failed_writes, 0);
    assert_eq!(report.acked_after_first_error, 0);
    assert!(report.acked_writes > 0);
    assert!(
        report.server.batches >= 4,
        "4 committers should each have drained at least one batch: {}",
        report.server.batches
    );
}

/// The headline failover test: a replicated 2-shard server, crash armed
/// on shard 0's **primary** device, fired early. The shard must promote
/// its backup in place — no dead shard — and keep acking on the
/// survivor; the recovery verifier then holds every `Ok`-acked write to
/// be present and untorn on the promoted backup, and audits the crashed
/// primary's image against it (the backup may only ever be *ahead*).
#[test]
fn failover_promotes_backup_and_keeps_acking() {
    let cfg = TortureConfig {
        pool_shards: 2,
        replicas: 2,
        crash_shard: 0,
        recovery_threads: 2,
        ..small_torture()
    };
    let total = traffic_op_count(&cfg);
    assert!(total > 200, "primary's op stream too small: {total}");
    let report = kill_during_traffic(total / 10, &cfg).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.injected, "point {} of {total} must fire", total / 10);
    assert_eq!(report.server.replicas, 4, "2 shards x 2 replica stacks");
    assert_eq!(report.promotions, 1, "exactly one promotion");
    assert!(
        report.acked_after_promotion > 0,
        "the promoted shard must keep acking (liveness witness)"
    );
    assert_eq!(
        report.server.dead_shards, 0,
        "failover must keep every shard alive"
    );
    assert_eq!(
        report.degraded_shards, 1,
        "the promoted shard runs solo afterwards"
    );
    assert!(report.acked_after_first_error > 0);
    assert!(report.keys_checked > 0);
}

/// Read-your-writes across promotion: after the primary crash fails the
/// shard over to its backup (and `acked_after_promotion` witnesses it
/// acking again), a fresh connection SETs a key routed to the promoted
/// shard twice and GETs it back — the survivor must serve the *last*
/// acked SET, not a stale or empty image.
#[test]
fn get_after_promotion_observes_last_acked_set() {
    let cfg = TortureConfig {
        pool_shards: 2,
        replicas: 2,
        crash_shard: 0,
        recovery_threads: 2,
        ..small_torture()
    };
    let total = traffic_op_count(&cfg);
    let report = promotion_read_probe(total / 10, &cfg).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.injected, "point {} of {total} must fire", total / 10);
    assert!(report.promotions >= 1, "the crash shard must fail over");
    assert!(
        report.acked_after_promotion > 0,
        "the probe runs after the promoted shard resumed acking"
    );
    assert_eq!(report.probe_shard, 0, "the probe key targets the promoted shard");
    assert_eq!(
        report.probe_sets_acked, 2,
        "both probe SETs must ack on the survivor"
    );
}

/// A **backup** crash is invisible to clients: the shard degrades to
/// solo mode on the primary, keeps acking (acks were always gated on the
/// primary's durability too), and nothing acked is lost — verified
/// against the primaries.
#[test]
fn backup_crash_degrades_shard_to_solo() {
    let cfg = TortureConfig {
        pool_shards: 2,
        replicas: 2,
        crash_shard: 1,
        crash_replica: 1,
        recovery_threads: 2,
        ..small_torture()
    };
    let total = traffic_op_count(&cfg);
    assert!(total > 100, "backup's op stream too small: {total}");
    let report = kill_during_traffic(total / 4, &cfg).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.injected, "point {} of {total} must fire", total / 4);
    assert_eq!(report.promotions, 0, "a backup crash must never promote");
    assert_eq!(report.degraded_shards, 1);
    assert_eq!(report.server.dead_shards, 0);
    assert_eq!(report.divergent_keys, 0, "no failover, no divergence audit");
    assert!(report.acked_writes > 0);
    assert!(report.keys_checked > 0);
}

/// Small strided failover sweep for the default suite: crash the primary
/// at several points across its op stream; every point must verify.
#[test]
fn replicated_kill_strided_sweep() {
    let cfg = TortureConfig {
        replicas: 2,
        ..small_torture()
    };
    let total = traffic_op_count(&cfg);
    let mut injected = 0;
    for point in strided_points(total, 4) {
        let report = kill_during_traffic(point, &cfg).unwrap_or_else(|e| panic!("{e}"));
        if report.injected {
            injected += 1;
        }
    }
    assert!(injected >= 2, "sweep barely injected: {injected}/4 points");
}

/// Graceful shutdown must drain the committer queue: a connection with a
/// burst of pipelined, unread SETs gets **every** reply (acked or
/// failed — never silently dropped) when another connection shuts the
/// server down, and the write accounting stays exact:
/// `queued == acked + nacked + failed`.
#[test]
fn graceful_shutdown_drains_every_queued_ticket() {
    const BURST: usize = 200;
    let pmem = Pmem::new(PmemConfig::crash_sim(128 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .unwrap();
    let be = Arc::new(JnvmBackend::create(&rt, 8, true).unwrap());
    let grid = Arc::new(DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    ));
    let server = Server::start(
        grid,
        be,
        Arc::clone(&pmem),
        ServerConfig {
            batch_max: 16,
            queue_cap: 256,
        },
    )
    .unwrap();

    let mut a = TcpStream::connect(server.addr()).unwrap();
    a.set_nodelay(true).unwrap();
    a.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    handshake(&mut a).expect("hello");
    let mut burst = Vec::new();
    for i in 0..BURST {
        let rec = Record::ycsb(&format!("drain-{i:03}"), &[vec![i as u8; 32]]);
        burst.extend_from_slice(&encode_request(&Request::Set(rec)));
    }
    a.write_all(&burst).unwrap();
    // Let the handler pull the whole burst into tickets before the
    // shutdown lands — the satellite under test is queued-ticket
    // draining, not partial-read truncation.
    std::thread::sleep(Duration::from_millis(300));

    let mut b = TcpStream::connect(server.addr()).unwrap();
    b.set_nodelay(true).unwrap();
    b.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    handshake(&mut b).expect("hello");
    b.write_all(&encode_request(&Request::Shutdown)).unwrap();

    // Every one of A's writes must be answered — acked or failed, never
    // silently dropped — before the server closes the connection.
    let mut replies = 0usize;
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        while let Ok(Some((reply, n))) = parse_reply(&buf) {
            buf.drain(..n);
            assert!(
                matches!(reply, Reply::Ok | Reply::Err(_)),
                "SET answered {reply:?}"
            );
            replies += 1;
        }
        match a.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(_) => break,
        }
    }
    assert_eq!(replies, BURST, "a queued ticket was silently lost");

    // All replies are in hand ⇒ every ticket is resolved; the counters
    // are final before the teardown.
    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.queued_writes, BURST as u64);
    assert_eq!(
        stats.queued_writes,
        stats.acked_writes + stats.nacked_writes + stats.failed_writes,
        "every ticket must resolve exactly once"
    );
    assert_eq!(stats.acked_writes, BURST as u64, "crash-free burst must ack");
    drop(rt);
}

/// The wide sweep for the scheduled torture job
/// (`cargo test --release --test server_torture -- --ignored`).
/// Recovers on 4 threads so the torture job also exercises the parallel
/// reopen path at scale.
#[test]
#[ignore]
fn kill_during_traffic_wide_sweep() {
    let cfg = TortureConfig {
        load: LoadgenConfig {
            conns: 4,
            ops_per_conn: 100,
            pipeline: 16,
            fields: 4,
            value_size: 64,
            seed: 0,
        },
        recovery_threads: 4,
        ..TortureConfig::default()
    };
    let total = traffic_op_count(&cfg);
    for point in strided_points(total, 40) {
        if let Err(e) = kill_during_traffic(point, &cfg) {
            panic!("{e}");
        }
    }
}

/// Wide replicated sweep for the torture job: primary kills across the
/// op stream on a 2-shard replicated server, plus a handful of backup
/// kills. Every point must verify acked ⇒ durable on the survivor.
#[test]
#[ignore]
fn replicated_kill_wide_sweep() {
    let cfg = TortureConfig {
        load: LoadgenConfig {
            conns: 4,
            ops_per_conn: 80,
            pipeline: 16,
            fields: 4,
            value_size: 64,
            seed: 0,
        },
        pool_shards: 2,
        replicas: 2,
        recovery_threads: 4,
        ..TortureConfig::default()
    };
    let total = traffic_op_count(&cfg);
    for point in strided_points(total, 25) {
        if let Err(e) = kill_during_traffic(point, &cfg) {
            panic!("primary kill at {point}: {e}");
        }
    }
    let backup_cfg = TortureConfig {
        crash_replica: 1,
        ..cfg
    };
    let total_b = traffic_op_count(&backup_cfg);
    for point in strided_points(total_b, 10) {
        if let Err(e) = kill_during_traffic(point, &backup_cfg) {
            panic!("backup kill at {point}: {e}");
        }
    }
}
