//! End-to-end tests for `jnvm-server`: group-commit fence amortization
//! under pipelined load, and the kill-during-traffic sweep (crash injected
//! while ≥4 pipelined connections are live, reopen, verify every acked
//! write survived and every record is untorn).
//!
//! The default suite runs a time-bounded smoke plus a small strided sweep;
//! the `--ignored` test widens the sweep for the scheduled torture job.
//!
//! The pool-shard count of the torture configs honors `JNVM_SHARDS`
//! (default 1), so CI runs the same sweeps over the degenerate one-pool
//! server and the sharded engine; the dedicated sharded tests below pin
//! the failure-isolation contract at 4 shards regardless.

use std::sync::Arc;

use jnvm_repro::faultsim::strided_points;
use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::JnvmBuilder;
use jnvm_repro::kvstore::{
    register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend,
};
use jnvm_repro::pmem::{Pmem, PmemConfig};
use jnvm_repro::server::{
    kill_during_traffic, run_loadgen, traffic_op_count, LoadgenConfig, Server, ServerConfig,
    TortureConfig,
};

/// Pool shards for the shared sweeps: `JNVM_SHARDS` or 1.
fn pool_shards_from_env() -> usize {
    std::env::var("JNVM_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

fn small_torture() -> TortureConfig {
    TortureConfig {
        load: LoadgenConfig {
            conns: 4,
            ops_per_conn: 40,
            pipeline: 8,
            fields: 3,
            value_size: 48,
        },
        pool_shards: pool_shards_from_env(),
        ..TortureConfig::default()
    }
}

/// Acked ⇒ durable must come *cheap*: under pipelined load the committer
/// groups staged writes behind shared fences, so ordering points
/// (pfences + psyncs) stay well below one per acked write. A server that
/// fenced every write individually pays ≥ 3× more and fails this.
#[test]
fn group_commit_amortizes_fences_under_pipelined_load() {
    let pmem = Pmem::new(PmemConfig::crash_sim(256 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .unwrap();
    let be = Arc::new(JnvmBackend::create(&rt, 16, true).unwrap());
    let grid = Arc::new(DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    ));
    let server = Server::start(
        Arc::clone(&grid),
        Arc::clone(&be),
        Arc::clone(&pmem),
        ServerConfig::default(),
    )
    .unwrap();
    let before = pmem.stats();
    let load = run_loadgen(
        server.addr(),
        &LoadgenConfig {
            conns: 4,
            ops_per_conn: 200,
            pipeline: 16,
            ..LoadgenConfig::default()
        },
    );
    let stats = server.stats();
    server.shutdown();
    let d = pmem.stats().delta(&before);

    assert_eq!(load.errors, 0, "crash-free traffic must not error");
    assert!(
        load.acked_writes >= 700,
        "expected ~720 acked writes, got {}",
        load.acked_writes
    );
    assert_eq!(stats.acked_writes, load.acked_writes);
    assert!(stats.groups > 0 && stats.batches > 0);
    assert!(
        d.ordering_points() < load.acked_writes,
        "group commit must amortize fences: {} ordering points for {} acked \
         writes ({} groups in {} batches)",
        d.ordering_points(),
        load.acked_writes,
        stats.groups,
        stats.batches
    );
    drop(rt);
}

/// A crash point past the end of the op stream: traffic completes, nothing
/// injects, and the recovery verifier must accept the full image — every
/// acked write present and every record untorn after reopen.
#[test]
fn uninjected_run_reopens_with_every_acked_write() {
    let cfg = small_torture();
    let report = kill_during_traffic(u64::MAX, &cfg).expect("verification");
    assert!(!report.injected);
    assert_eq!(report.server.failed_writes, 0);
    assert!(report.acked_writes > 0);
    assert!(report.keys_checked > 0);
}

/// Strided kill sweep: inject a crash at several points across the
/// device-op stream while 4 pipelined connections are live, then reopen
/// and verify. Bounded for the default suite; the `--ignored` variant
/// sweeps wider.
#[test]
fn kill_during_traffic_strided_sweep() {
    let cfg = small_torture();
    let total = traffic_op_count(&cfg);
    assert!(total > 1000, "traffic too small to be interesting: {total}");
    let mut injected = 0;
    for point in strided_points(total, 5) {
        let report =
            kill_during_traffic(point, &cfg).unwrap_or_else(|e| panic!("{e}"));
        if report.injected {
            injected += 1;
        }
    }
    assert!(injected >= 3, "sweep barely injected: {injected}/5 points");
}

/// The strided kill sweep again, but the post-kill reopen recovers on 4
/// worker threads: the acked-durability and untorn-record verdicts must
/// not depend on the recovery thread count (the full bit-level proof is
/// `tests/recovery_equivalence.rs`; this holds the server wiring to it).
#[test]
fn kill_during_traffic_recovers_in_parallel() {
    let cfg = TortureConfig {
        recovery_threads: 4,
        ..small_torture()
    };
    let total = traffic_op_count(&cfg);
    let mut injected = 0;
    for point in strided_points(total, 3) {
        let report = kill_during_traffic(point, &cfg).unwrap_or_else(|e| panic!("{e}"));
        if report.injected {
            injected += 1;
        }
    }
    assert!(injected >= 2, "sweep barely injected: {injected}/3 points");
}

/// The headline isolation test: a 4-shard server, crash armed on one
/// shard's device, fired early in the traffic. The dead shard must refuse
/// service (its keys answer `Err`), the other three must keep committing
/// — visible as `Ok` acks *after* connections saw their first error — and
/// after recovering all four pools every acked write must be present and
/// untorn, including on the shards that never crashed.
#[test]
fn sharded_kill_isolates_the_crashed_shard() {
    let cfg = TortureConfig {
        pool_shards: 4,
        crash_shard: 1,
        recovery_threads: 2,
        ..small_torture()
    };
    let total = traffic_op_count(&cfg);
    assert!(total > 200, "crash shard's op stream too small: {total}");
    // Early point: most of the traffic still ahead when the shard dies.
    let report = kill_during_traffic(total / 10, &cfg).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.injected, "point {} of {total} must fire", total / 10);
    assert_eq!(report.server.shards, 4);
    assert_eq!(
        report.server.dead_shards, 1,
        "exactly the crash shard must die; the rest keep serving"
    );
    assert!(
        report.acked_after_first_error > 0,
        "non-crashed shards must keep acking after the first error reply \
         ({} acked total)",
        report.acked_writes
    );
    assert!(report.acked_writes > 0);
    assert!(report.keys_checked > 0);
}

/// Crash-free sharded traffic: a 4-shard server under the standard load
/// must ack everything, error nothing, and report per-shard counters that
/// sum coherently (groups/batches spread over multiple committers).
#[test]
fn sharded_server_serves_crash_free_traffic() {
    let cfg = TortureConfig {
        pool_shards: 4,
        ..small_torture()
    };
    let report = kill_during_traffic(u64::MAX, &cfg).expect("verification");
    assert!(!report.injected);
    assert_eq!(report.server.shards, 4);
    assert_eq!(report.server.dead_shards, 0);
    assert_eq!(report.server.failed_writes, 0);
    assert_eq!(report.acked_after_first_error, 0);
    assert!(report.acked_writes > 0);
    assert!(
        report.server.batches >= 4,
        "4 committers should each have drained at least one batch: {}",
        report.server.batches
    );
}

/// The wide sweep for the scheduled torture job
/// (`cargo test --release --test server_torture -- --ignored`).
/// Recovers on 4 threads so the torture job also exercises the parallel
/// reopen path at scale.
#[test]
#[ignore]
fn kill_during_traffic_wide_sweep() {
    let cfg = TortureConfig {
        load: LoadgenConfig {
            conns: 4,
            ops_per_conn: 100,
            pipeline: 16,
            fields: 4,
            value_size: 64,
        },
        recovery_threads: 4,
        ..TortureConfig::default()
    };
    let total = traffic_op_count(&cfg);
    for point in strided_points(total, 40) {
        if let Err(e) = kill_during_traffic(point, &cfg) {
            panic!("{e}");
        }
    }
}
