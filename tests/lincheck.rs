//! Durable-linearizability integration: the sharded in-process torture
//! feeds its captured history through the Wing–Gong checker after
//! recovery, and the seeded loadgen replays byte-identical invocation
//! sequences.
//!
//! The adversarial self-tests for the checker itself (hand-crafted
//! non-linearizable histories with pinned minimized witnesses) live in
//! `crates/lincheck/src/check.rs`; this file covers the system-level
//! wiring — real commits, real crash injection, real recovery — plus the
//! loadgen determinism contract the torture verifiers depend on.

use std::sync::{Arc, Mutex};

use jnvm_repro::faultsim::{sharded_torture_point, strided_points};
use jnvm_repro::jnvm::RecoveryOptions;
use jnvm_repro::kvstore::{
    commit_writes, shard_for_key, GridConfig, Record, ShardedKv, WriteOp,
};
use jnvm_repro::lincheck::{self, ClientRecorder, Clock, History, OpKind, Outcome};
use jnvm_repro::pmem::{catch_crash, silence_crash_panics, FaultPlan, Pmem, PmemConfig};
use jnvm_repro::server::{
    run_loadgen, LoadgenConfig, Server, ServerConfig, ShardHandle,
};

const POOL_SHARDS: usize = 2;
const CRASH_SHARD: usize = 0;
const CHUNKS: usize = 10;

fn grid_cfg() -> GridConfig {
    GridConfig {
        cache_capacity: 0,
        ..GridConfig::default()
    }
}

/// Key `i` of chunk `c`, salted until it routes to `shard` — the sharded
/// engine recovers each pool independently and asserts routing, so the
/// workload must respect `shard_for_key`.
fn skey(shard: usize, c: usize, i: usize) -> String {
    (0u32..)
        .map(|salt| format!("sh{shard}-c{c:02}-k{i}-{salt}"))
        .find(|k| shard_for_key(k, POOL_SHARDS) == shard)
        .expect("some salt routes to the shard")
}

/// One commit group: two SETs, a SETF on key 0, a DEL of key 1. An acked
/// chunk leaves key 0 present (field 0 rewritten) and key 1 absent.
fn chunk(shard: usize, c: usize) -> Vec<WriteOp> {
    let val = |i: usize| format!("v{shard}-{c}-{i}").into_bytes();
    vec![
        WriteOp::Set(Record::ycsb(&skey(shard, c, 0), &[val(0), val(1)])),
        WriteOp::Set(Record::ycsb(&skey(shard, c, 1), &[val(2), val(3)])),
        WriteOp::SetField {
            key: skey(shard, c, 0),
            field: 0,
            value: format!("f{shard}-{c}").into_bytes(),
        },
        WriteOp::Del(skey(shard, c, 1)),
    ]
}

fn captured_kind(op: &WriteOp) -> OpKind {
    match op {
        WriteOp::Set(rec) => OpKind::Set(rec.fields.iter().map(|(_, v)| v.clone()).collect()),
        WriteOp::SetField { field, value, .. } => OpKind::SetField(*field, value.clone()),
        WriteOp::Del(_) => OpKind::Del,
    }
}

/// Shared recorder state; `Arc`ed past the harness's context drop.
struct Log {
    clock: Clock,
    recorders: Vec<Mutex<ClientRecorder>>,
}

fn new_log() -> Arc<Log> {
    let clock = Clock::new();
    Arc::new(Log {
        recorders: (0..POOL_SHARDS)
            .map(|s| Mutex::new(ClientRecorder::new(&clock, s)))
            .collect(),
        clock,
    })
}

struct Ctx {
    kv: ShardedKv,
    log: Arc<Log>,
}

fn setup(log: &Arc<Log>) -> (Vec<Arc<Pmem>>, Ctx) {
    let pmems: Vec<Arc<Pmem>> = (0..POOL_SHARDS)
        .map(|s| Pmem::new(PmemConfig::crash_sim(24 << 20).with_label(&format!("shard{s}"))))
        .collect();
    let kv = ShardedKv::create(&pmems, 4, true, grid_cfg()).expect("create pools");
    (pmems, Ctx { kv, log: Arc::clone(log) })
}

/// Per-shard worker: commit every chunk on this shard's stack, recording
/// invocation/response events. A crash leaves the in-flight chunk
/// Indeterminate and kills the worker (the shard is dead).
fn drive(shard: usize, ctx: &Ctx) {
    let sh = &ctx.kv.shards()[shard];
    for c in 0..CHUNKS {
        let ops = chunk(shard, c);
        let toks: Vec<_> = {
            let mut rec = ctx.log.recorders[shard].lock().expect("recorder lock");
            ops.iter().map(|op| rec.invoke(op.key(), captured_kind(op))).collect()
        };
        match catch_crash(|| commit_writes(&sh.grid, &sh.be, &ops)) {
            Ok(out) => {
                let mut rec = ctx.log.recorders[shard].lock().expect("recorder lock");
                for (tok, (op, applied)) in toks.into_iter().zip(ops.iter().zip(&out.results)) {
                    let outcome = match op {
                        WriteOp::Set(_) => Outcome::Ok,
                        _ if *applied => Outcome::Ok,
                        _ => Outcome::NotFound,
                    };
                    rec.resolve(tok, outcome);
                }
            }
            Err(_) => return,
        }
    }
}

/// Count pass: size of the crash shard's op space under this workload.
fn op_space(log: &Arc<Log>) -> u64 {
    let (pmems, ctx) = setup(log);
    let dev = Arc::clone(&pmems[CRASH_SHARD]);
    dev.arm_faults(FaultPlan::count());
    for s in 0..POOL_SHARDS {
        drive(s, &ctx);
    }
    drop(ctx);
    dev.disarm_faults()
}

fn run_point(point: u64) {
    let log = new_log();
    let slog = Arc::clone(&log);
    let vlog = Arc::clone(&log);
    sharded_torture_point(
        point,
        FaultPlan::count(),
        CRASH_SHARD,
        move || setup(&slog),
        drive,
        move |pmems, out| {
            let mut hist = {
                let recs: Vec<ClientRecorder> = vlog
                    .recorders
                    .iter()
                    .enumerate()
                    .map(|(s, m)| {
                        std::mem::replace(
                            &mut *m.lock().expect("recorder lock"),
                            ClientRecorder::new(&vlog.clock, s),
                        )
                    })
                    .collect();
                History::collect(vlog.clock.clone(), recs)
            };
            hist.mark_crash();
            let (kv2, _reports) = ShardedKv::open(
                pmems,
                true,
                grid_cfg(),
                RecoveryOptions::parallel(2),
            )
            .unwrap_or_else(|e| panic!("point {}: reopen failed: {e}", out.point));
            let keys: Vec<String> = hist.keys().iter().map(|k| k.to_string()).collect();
            for key in keys {
                let state = kv2
                    .read(&key)
                    .map(|rec| rec.fields.into_iter().map(|(_, v)| v).collect());
                hist.observe(&key, state);
            }
            if let Err(v) = lincheck::check(&hist) {
                panic!("point {}: durable-linearizability violation: {v}", out.point);
            }
        },
    );
}

/// Time-bounded sweep for the default suite: strided crash points through
/// the sharded engine, every history checked after recovery.
#[test]
fn sharded_torture_histories_are_durably_linearizable() {
    silence_crash_panics();
    let total = op_space(&new_log());
    assert!(total > 0, "count pass saw no device ops");
    for point in strided_points(total, 6) {
        run_point(point);
    }
}

/// Exhaustive-leaning variant for the torture CI job.
#[test]
#[ignore = "wide sweep; run with --ignored in the torture job"]
fn sharded_lincheck_wide_sweep() {
    silence_crash_panics();
    let total = op_space(&new_log());
    for point in strided_points(total, 48) {
        run_point(point);
    }
}

// ------------------------------------------------------- seeded determinism

/// Spin a fresh single-shard server, run the seeded load, return the
/// history's invocation digest.
fn digest_for(seed: u64) -> Vec<u8> {
    let pmem = Pmem::new(PmemConfig::crash_sim(32 << 20));
    let kv = ShardedKv::create(&[Arc::clone(&pmem)], 4, true, grid_cfg()).expect("create pool");
    let shard = &kv.shards()[0];
    let server = Server::start_replicated(
        vec![vec![ShardHandle {
            grid: Arc::clone(&shard.grid),
            be: Arc::clone(&shard.be),
            pmem: Arc::clone(&shard.pmem),
        }]],
        ServerConfig::default(),
    )
    .expect("bind server");
    let cfg = LoadgenConfig {
        conns: 3,
        ops_per_conn: 50,
        pipeline: 8,
        fields: 2,
        value_size: 16,
        seed,
    };
    let report = run_loadgen(server.addr(), &cfg);
    server.shutdown();
    for c in &report.per_conn {
        assert!(c.proto_error.is_none(), "conn {}: {:?}", c.conn, c.proto_error);
        assert_eq!(c.sent, cfg.ops_per_conn, "conn {} did not send everything", c.conn);
    }
    report.history.invocation_digest()
}

/// Two runs at the same seed must record byte-identical invocation
/// sequences — timing and thread scheduling vary, the op stream must not.
#[test]
fn same_seed_records_byte_identical_invocations() {
    let a = digest_for(7);
    let b = digest_for(7);
    assert!(!a.is_empty(), "digest should cover the recorded invocations");
    assert_eq!(a, b, "same seed, different invocation stream");
    let c = digest_for(8);
    assert_ne!(a, c, "distinct seeds must produce distinct op streams");
}
