//! Differential testing of the parallel recovery engine against the
//! sequential pass.
//!
//! The contract under test: **any** recovery thread count produces the
//! same recovered heap. `threads == 1` is the oracle — it is the original
//! sequential replay + mark + sweep — and every parallel configuration
//! must match it *bit for bit* on the persistent media, and exactly on
//! every counter the [`RecoveryReport`] exposes (live objects, live
//! blocks, freed blocks, nullified refs, replayed/abandoned logs) plus
//! the rebuilt volatile state (free-queue length, pool free slots).
//!
//! Crash images come from three sources:
//!
//! 1. concurrent torture runs (bank transfers, DataGrid churn) killed
//!    mid-flight by the injection engine — randomized, messy images with
//!    in-flight redo logs;
//! 2. a deterministic wide graph of dangling references, so the
//!    work-stealing mark provably nullifies the same set of slots the
//!    sequential mark does;
//! 3. completed workloads (for the HeaderScanOnly-vs-Full pin and its
//!    counterexample).
//!
//! Images are captured once (a byte-for-byte copy of the post-crash
//! media) and restored into a fresh device per configuration, so every
//! recovery run starts from the identical crash state.

use std::sync::Arc;

use jnvm_repro::faultsim::{strided_points, torture_count, torture_sweep};
use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::{
    persistent_class, Jnvm, JnvmBuilder, PObject, RecoveryMode, RecoveryOptions,
    RecoveryReport,
};
use jnvm_repro::kvstore::{register_kvstore, DataGrid, GridConfig, JnvmBackend, Record};
use jnvm_repro::pmem::{
    silence_crash_panics, CrashPolicy, FaultPlan, Pmem, PmemConfig,
};
use jnvm_repro::tpcb::{register_tpcb, Bank, JnvmBank};

const NTHREADS: usize = 4;

/// Parallel thread counts to hold against the sequential oracle. The CI
/// recovery matrix narrows this to one count via `JNVM_RECOVERY_THREADS`.
fn candidate_threads() -> Vec<usize> {
    match std::env::var("JNVM_RECOVERY_THREADS") {
        Ok(v) => vec![v.parse().expect("JNVM_RECOVERY_THREADS must be a number")],
        Err(_) => vec![2, 4, 8],
    }
}

// ---------------------------------------------------------------------------
// Image capture / restore.
// ---------------------------------------------------------------------------

/// Byte-for-byte copy of the device **media** (the post-crash image).
fn snapshot(pmem: &Arc<Pmem>) -> Vec<u8> {
    // After `crash`/`resync_cache` the cache mirrors media exactly.
    pmem.resync_cache();
    let mut img = vec![0u8; pmem.len() as usize];
    pmem.read_bytes(0, &mut img);
    img
}

/// Fresh device holding exactly `image` on media.
fn restore(image: &[u8]) -> Arc<Pmem> {
    let pmem = Pmem::new(PmemConfig::crash_sim(image.len() as u64));
    pmem.write_bytes(0, image);
    pmem.drain_all();
    pmem
}

/// Restore `image` and recover it with the given mode and thread count.
fn open_restored(
    image: &[u8],
    register: fn(JnvmBuilder) -> JnvmBuilder,
    mode: RecoveryMode,
    threads: usize,
) -> (Arc<Pmem>, Jnvm, RecoveryReport) {
    let pmem = restore(image);
    let (rt, report) = register(JnvmBuilder::new())
        .open_with_options(Arc::clone(&pmem), RecoveryOptions { mode, threads })
        .expect("recovery");
    (pmem, rt, report)
}

/// Every persistent word of the two devices must agree.
fn assert_media_identical(a: &Arc<Pmem>, b: &Arc<Pmem>, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: device sizes differ");
    let mut addr = 0;
    while addr < a.len() {
        let (wa, wb) = (a.media_read_u64(addr), b.media_read_u64(addr));
        assert_eq!(
            wa, wb,
            "{label}: recovered media diverges at byte {addr:#x} \
             ({wa:#018x} vs {wb:#018x})"
        );
        addr += 8;
    }
}

/// The core differential check: recover `image` sequentially (the oracle)
/// and at each candidate thread count, and require identical media,
/// identical report counters, and identical rebuilt volatile state.
/// Returns the oracle report so callers can assert scenario-specific
/// expectations (e.g. "this image must have produced nullifications").
fn assert_thread_equivalence(
    image: &[u8],
    register: fn(JnvmBuilder) -> JnvmBuilder,
    mode: RecoveryMode,
    label: &str,
) -> RecoveryReport {
    let (op, ort, oracle) = open_restored(image, register, mode, 1);
    assert_eq!(oracle.threads, 1, "{label}: oracle must be sequential");
    for threads in candidate_threads() {
        let tag = format!("{label} [threads={threads}]");
        let (p, rt, rep) = open_restored(image, register, mode, threads);
        assert_eq!(rep.threads, threads, "{tag}: report thread count");
        assert_eq!(rep.replayed_logs, oracle.replayed_logs, "{tag}: replayed logs");
        assert_eq!(rep.abandoned_logs, oracle.abandoned_logs, "{tag}: abandoned logs");
        assert_eq!(rep.live_objects, oracle.live_objects, "{tag}: live objects");
        assert_eq!(rep.live_blocks, oracle.live_blocks, "{tag}: live blocks");
        assert_eq!(rep.freed_blocks, oracle.freed_blocks, "{tag}: freed blocks");
        assert_eq!(rep.nullified_refs, oracle.nullified_refs, "{tag}: nullified refs");
        assert_eq!(
            rt.heap().stats().free_queue_len,
            ort.heap().stats().free_queue_len,
            "{tag}: rebuilt free-queue length"
        );
        assert_eq!(
            rt.heap().stats().bump,
            ort.heap().stats().bump,
            "{tag}: repaired bump pointer"
        );
        assert_eq!(
            rt.pools().free_slots(),
            ort.pools().free_slots(),
            "{tag}: rebuilt pool free slots"
        );
        assert_media_identical(&op, &p, &tag);
    }
    oracle
}

// ---------------------------------------------------------------------------
// Torture-produced images: concurrent bank transfers.
// ---------------------------------------------------------------------------

const ACCOUNTS: u64 = 8;
const INITIAL: i64 = 1000;
const TRANSFERS: usize = 5;

struct BankCtx {
    _rt: Jnvm,
    bank: JnvmBank,
}

fn bank_setup() -> (Arc<Pmem>, BankCtx) {
    let pmem = Pmem::new(PmemConfig::crash_sim(4 << 20));
    let rt = register_tpcb(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let bank = JnvmBank::create(&rt, ACCOUNTS, INITIAL).expect("bank");
    pmem.psync();
    (pmem, BankCtx { _rt: rt, bank })
}

fn bank_workload(t: usize, ctx: &BankCtx) {
    for i in 0..TRANSFERS {
        let a = ((t * 2 + i) as u64) % ACCOUNTS;
        let b = (a + 3) % ACCOUNTS;
        assert!(ctx.bank.transfer(a, b, 7), "transfer ({a}, {b}) refused");
    }
}

fn bank_torture_equivalence(points: Vec<u64>) {
    silence_crash_panics();
    let summary = torture_sweep(
        points,
        FaultPlan::count(),
        NTHREADS,
        bank_setup,
        bank_workload,
        |pmem, outcome| {
            let image = snapshot(pmem);
            assert_thread_equivalence(
                &image,
                register_tpcb,
                RecoveryMode::Full,
                &format!("bank@{}", outcome.point),
            );
        },
    );
    assert!(summary.points_injected > 0, "no crash point fired");
}

/// Bounded slice: a strided sample of the interleaved op stream; at each
/// crashed point the image is recovered at 1/2/4/8 threads and compared.
#[test]
fn bank_torture_images_recover_identically_across_thread_counts() {
    let total = torture_count(NTHREADS, bank_setup, bank_workload);
    assert!(total > 0, "bank workload performed no persistence ops");
    bank_torture_equivalence(strided_points(total, 8));
}

/// Exhaustive variant: every crash point of the interleaved stream.
#[test]
#[ignore = "exhaustive differential sweep; run with --ignored"]
fn bank_torture_images_recover_identically_exhaustive() {
    let total = torture_count(NTHREADS, bank_setup, bank_workload);
    bank_torture_equivalence((0..total).collect());
}

// ---------------------------------------------------------------------------
// Torture-produced images: DataGrid churn (pooled objects + frees).
// ---------------------------------------------------------------------------

const KEYS_PER_THREAD: usize = 4;
const CHURN_ROUNDS: usize = 6;

struct GridCtx {
    _rt: Jnvm,
    grid: DataGrid,
}

fn grid_key(t: usize, k: usize) -> String {
    format!("t{t}k{k}")
}

fn grid_val(t: usize, k: usize, tag: &str) -> Vec<u8> {
    format!("{t:02}{k:02}{tag}").into_bytes()
}

fn grid_setup() -> (Arc<Pmem>, GridCtx) {
    let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let be = JnvmBackend::create(&rt, 2, true).expect("backend");
    let grid = DataGrid::new(
        Arc::new(be),
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    );
    for t in 0..NTHREADS {
        for k in 0..KEYS_PER_THREAD {
            let v = grid_val(t, k, "init");
            assert!(grid.insert(&Record::ycsb(&grid_key(t, k), &[v.clone(), v])));
        }
    }
    pmem.psync();
    (pmem, GridCtx { _rt: rt, grid })
}

fn grid_workload(t: usize, ctx: &GridCtx) {
    for i in 0..CHURN_ROUNDS {
        for k in 0..KEYS_PER_THREAD {
            let key = grid_key(t, k);
            let tag = format!("{i:04}");
            match i % 3 {
                0 => {
                    assert!(ctx.grid.rmw(&key, 0, &grid_val(t, k, &tag)));
                }
                1 => {
                    assert!(ctx.grid.remove(&key));
                }
                _ => {
                    let v = grid_val(t, k, &tag);
                    assert!(ctx.grid.insert(&Record::ycsb(&key, &[v.clone(), v])));
                }
            }
        }
    }
}

/// Churn images exercise the pooled-object claim table and the pool-slot
/// sweep: records live in slab slots, removes free them mid-flight.
#[test]
fn grid_churn_images_recover_identically_across_thread_counts() {
    silence_crash_panics();
    let total = torture_count(NTHREADS, grid_setup, grid_workload);
    assert!(total > 0, "grid workload performed no persistence ops");
    let summary = torture_sweep(
        strided_points(total, 6),
        FaultPlan::count(),
        NTHREADS,
        grid_setup,
        grid_workload,
        |pmem, outcome| {
            let image = snapshot(pmem);
            assert_thread_equivalence(
                &image,
                register_kvstore,
                RecoveryMode::Full,
                &format!("grid@{}", outcome.point),
            );
        },
    );
    assert!(summary.points_injected > 0, "no crash point fired");
}

// ---------------------------------------------------------------------------
// Deterministic dangling-reference graph: the nullification set.
// ---------------------------------------------------------------------------

persistent_class! {
    pub class Pair {
        val value, set_value: i64;
        ref next, set_next, update_next: Pair;
    }
}

const PAIRS: i64 = 96;

/// A wide two-level graph: `PAIRS` roots, each pointing at a child that is
/// validated only every third time. The other two thirds are dangling at
/// recovery — reachable but invalid — and must be nullified. Wide and
/// flat so the work-stealing mark actually distributes it.
fn dangling_graph_image() -> Vec<u8> {
    let pmem = Pmem::new(PmemConfig::crash_sim(2 << 20));
    let rt = JnvmBuilder::new()
        .register::<Pair>()
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    for i in 0..PAIRS {
        let a = Pair::alloc_uninit(&rt);
        a.set_value(i);
        let b = Pair::alloc_uninit(&rt);
        b.set_value(i + 1000);
        a.set_next(Some(&b));
        a.pwb();
        b.pwb();
        if i % 3 == 0 {
            b.validate();
        }
        rt.root_put(&format!("n{i}"), &a).expect("root");
    }
    rt.psync();
    pmem.crash(&CrashPolicy::strict()).expect("crash");
    snapshot(&pmem)
}

#[test]
fn dangling_refs_nullified_identically_in_parallel() {
    let image = dangling_graph_image();
    let oracle = assert_thread_equivalence(
        &image,
        |b| b.register::<Pair>(),
        RecoveryMode::Full,
        "dangling-graph",
    );
    // Two thirds of the children were never validated.
    let expected = (PAIRS - (PAIRS + 2) / 3) as u64;
    assert_eq!(
        oracle.nullified_refs, expected,
        "every dangling child ref must be nullified exactly once"
    );
    assert!(oracle.freed_blocks > 0, "invalid children must be reclaimed");
}

// ---------------------------------------------------------------------------
// HeaderScanOnly vs Full: the pin and its counterexample.
// ---------------------------------------------------------------------------

/// Image of a *completed* FA-publication-only workload: every allocation
/// was published (made reachable) inside its failure-atomic block, so
/// nothing valid is unreachable.
fn fa_publication_only_image() -> Vec<u8> {
    let (pmem, ctx) = bank_setup();
    for t in 0..NTHREADS {
        bank_workload(t, &ctx);
    }
    drop(ctx);
    pmem.crash(&CrashPolicy::strict()).expect("crash");
    snapshot(&pmem)
}

/// On FA-publication-only workloads the cheap header scan (J-PFA-nogc)
/// must agree with the full reachability pass — same live/freed blocks,
/// same recovered media — at every thread count. This pins HeaderScanOnly
/// as a sound fast path for workloads that never leak.
#[test]
fn header_scan_agrees_with_full_gc_on_publication_only_workloads() {
    let image = fa_publication_only_image();
    let full = assert_thread_equivalence(
        &image,
        register_tpcb,
        RecoveryMode::Full,
        "pin-full",
    );
    let scan = assert_thread_equivalence(
        &image,
        register_tpcb,
        RecoveryMode::HeaderScanOnly,
        "pin-scan",
    );
    assert_eq!(scan.live_blocks, full.live_blocks, "modes disagree on live blocks");
    assert_eq!(scan.freed_blocks, full.freed_blocks, "modes disagree on freed blocks");
    assert_eq!(full.nullified_refs, 0, "publication-only image has no dangling refs");
    let (pf, _rtf, _) =
        open_restored(&image, register_tpcb, RecoveryMode::Full, 1);
    let (ps, _rts, _) =
        open_restored(&image, register_tpcb, RecoveryMode::HeaderScanOnly, 1);
    assert_media_identical(&pf, &ps, "pin: Full vs HeaderScanOnly media");
}

/// The counterexample that shows the pin is *conditional*: a valid,
/// flushed, but never-published object. Full recovery reclaims it (it is
/// unreachable); the header scan keeps it (it is a valid master). The two
/// modes legitimately diverge here, which is exactly why HeaderScanOnly
/// is an opt-in (J-PFA-nogc) and not the default.
#[test]
fn header_scan_diverges_from_full_gc_on_unreachable_garbage() {
    let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
    let rt = JnvmBuilder::new()
        .register::<Pair>()
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let kept = Pair::alloc_uninit(&rt);
    kept.set_value(1);
    kept.pwb();
    rt.root_put("kept", &kept).expect("root");
    // Leaked: allocated, validated, flushed — never made reachable.
    let leaked = Pair::alloc_uninit(&rt);
    leaked.set_value(2);
    leaked.pwb();
    leaked.validate();
    rt.pfence();
    let leaked_block = rt.heap().block_of_addr(leaked.addr());
    pmem.crash(&CrashPolicy::strict()).expect("crash");
    let image = snapshot(&pmem);

    // Each mode still equals itself across thread counts...
    let full = assert_thread_equivalence(
        &image,
        |b| b.register::<Pair>(),
        RecoveryMode::Full,
        "diverge-full",
    );
    let scan = assert_thread_equivalence(
        &image,
        |b| b.register::<Pair>(),
        RecoveryMode::HeaderScanOnly,
        "diverge-scan",
    );
    // ...but the two modes disagree about the leaked block.
    assert!(
        scan.live_blocks > full.live_blocks,
        "header scan must retain the unreachable-but-valid master"
    );
    let (_, rt_full, _) =
        open_restored(&image, |b| b.register::<Pair>(), RecoveryMode::Full, 1);
    let (_, rt_scan, _) =
        open_restored(&image, |b| b.register::<Pair>(), RecoveryMode::HeaderScanOnly, 1);
    assert!(
        rt_full.heap().read_header(leaked_block).is_free_or_slave(),
        "Full mode reclaims the leaked block"
    );
    assert!(
        rt_scan.heap().read_header(leaked_block).is_valid_master(),
        "HeaderScanOnly keeps the leaked block"
    );
}
