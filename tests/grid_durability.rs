//! Data-grid durability: the embedded grid over the J-NVM backends
//! survives device crashes with full record fidelity, and the external
//! backends keep their contract too.

use std::sync::Arc;

use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::JnvmBuilder;
use jnvm_repro::kvstore::{
    register_kvstore, CostModel, DataGrid, FsBackend, GridConfig, JnvmBackend, Record,
};
use jnvm_repro::pmem::{CrashPolicy, Pmem, PmemConfig};

fn sample_record(i: u32) -> Record {
    Record::ycsb(
        &format!("user{i:08}"),
        &(0..10).map(|f| vec![(i % 251) as u8 ^ f; 100]).collect::<Vec<_>>(),
    )
}

#[test]
fn jnvm_grid_survives_crash_with_full_fidelity() {
    for fa in [false, true] {
        eprintln!("== fa = {fa} ==");
        let pmem = Pmem::new(PmemConfig::crash_sim(256 << 20));
        let rt = register_kvstore(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .expect("pool");
        let backend = Arc::new(JnvmBackend::create(&rt, 8, fa).expect("backend"));
        let grid = DataGrid::new(backend, GridConfig::default());
        for i in 0..200 {
            assert!(grid.insert(&sample_record(i)), "insert {i} (fa={fa})");
        }
        // Updates through the field path.
        for i in 0..50 {
            assert!(grid.update_field(&format!("user{i:08}"), 3, &[0xEE; 100]));
        }
        grid.backend().sync();
        drop(grid);
        drop(rt);
        pmem.crash(&CrashPolicy::strict()).expect("crash");

        let (rt2, _) = register_kvstore(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .expect("recovery");
        let backend2 = Arc::new(JnvmBackend::open(&rt2, fa).expect("backend reopen"));
        let grid2 = DataGrid::new(backend2, GridConfig::default());
        assert_eq!(grid2.len(), 200);
        for i in 0..200 {
            if i == 0 { eprintln!("reading back (fa={fa})"); }
            let rec = grid2
                .read(&format!("user{i:08}"))
                .unwrap_or_else(|| panic!("record {i} lost (fa={fa})"));
            if i < 50 {
                assert_eq!(rec.fields[3].1, vec![0xEE; 100], "updated field {i}");
            } else {
                assert_eq!(rec, sample_record(i), "record {i} content");
            }
        }
    }
}

#[test]
fn fs_grid_survives_crash_after_remount() {
    let pmem = Pmem::new(PmemConfig::crash_sim(64 << 20));
    let be = Arc::new(FsBackend::new(Arc::clone(&pmem), 4096, CostModel::free()));
    let grid = DataGrid::new(
        be,
        GridConfig {
            cache_capacity: 16,
            ..GridConfig::default()
        },
    );
    for i in 0..100 {
        assert!(grid.insert(&sample_record(i)));
    }
    drop(grid);
    pmem.crash(&CrashPolicy::strict()).expect("crash");
    let be2 = Arc::new(FsBackend::mount(pmem, 4096, CostModel::free()));
    let grid2 = DataGrid::new(be2, GridConfig::default());
    assert_eq!(grid2.len(), 100);
    for i in 0..100 {
        assert_eq!(grid2.read(&format!("user{i:08}")).expect("present"), sample_record(i));
    }
}

#[test]
fn concurrent_grid_load_then_crash() {
    let pmem = Pmem::new(PmemConfig::crash_sim(256 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let backend = Arc::new(JnvmBackend::create(&rt, 16, false).expect("backend"));
    let grid = Arc::new(DataGrid::new(backend, GridConfig::default()));
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let grid = Arc::clone(&grid);
            s.spawn(move || {
                for i in 0..50 {
                    grid.insert(&sample_record(t * 1000 + i));
                }
            });
        }
    });
    assert_eq!(grid.len(), 200);
    grid.backend().sync();
    drop(grid);
    drop(rt);
    pmem.crash(&CrashPolicy::strict()).expect("crash");
    let (rt2, _) = register_kvstore(JnvmBuilder::new())
        .open(Arc::clone(&pmem))
        .expect("recovery");
    let backend2 = JnvmBackend::open(&rt2, false).expect("reopen");
    use jnvm_repro::kvstore::Backend as _;
    assert_eq!(backend2.len(), 200);
    for t in 0..4u32 {
        for i in 0..50 {
            let key = format!("user{:08}", t * 1000 + i);
            assert!(backend2.read(&key).is_some(), "{key} lost");
        }
    }
}
