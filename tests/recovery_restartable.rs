//! Crash-during-recovery: the parallel recovery pass is itself a
//! crash-consistent program.
//!
//! Recovery replays redo logs, nullifies dangling references, clears dead
//! headers, and retires committed flags — all persistent writes. If the
//! power fails *again* in the middle of that (a very real failure mode:
//! machines that crash once tend to crash again on the way back up), the
//! next recovery must converge to exactly the heap a crash-free recovery
//! would have produced, no matter which worker was mid-write.
//!
//! Mechanically: a concurrent torture run produces a mid-flight crash
//! image; [`jnvm_faultsim::sweep_resync`] then sweeps crash points *inside*
//! a parallel (`threads = 4`) recovery of that image — the injected crash
//! unwinds one recovery worker, `run_workers` re-throws it from the
//! spawning thread, and the harness resynchronizes the device cache from
//! media (ghost stores of other mid-store workers must not be visible).
//! Verification reopens sequentially and requires:
//!
//! 1. the workload's own invariants (bank money conserved, whole
//!    transfers only);
//! 2. **convergence**: the final media is bit-identical to the oracle —
//!    the media produced by recovering the original image without any
//!    mid-recovery crash;
//! 3. **idempotence**: a third recovery finds nothing left to do (no logs
//!    to replay, nothing to free, nothing to nullify).
//!
//! The default tests sweep a strided slice of the recovery op stream; the
//! exhaustive every-point sweep (plus adversarial line-eviction policies)
//! runs with `--ignored`.

use std::sync::Arc;

use jnvm_repro::faultsim::{
    count_ops, strided_points, sweep_resync, torture_count, torture_sweep, SweepSummary,
};
use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::{
    persistent_class, Jnvm, JnvmBuilder, RecoveryOptions,
};
use jnvm_repro::pmem::{
    silence_crash_panics, CrashPolicy, FaultPlan, Pmem, PmemConfig,
};
use jnvm_repro::tpcb::{register_tpcb, Bank, JnvmBank};

/// Writer threads in the torture run that produces the crash image.
const NTHREADS: usize = 4;
/// Worker threads of the recovery pass under injection. The CI recovery
/// matrix overrides this via `JNVM_RECOVERY_THREADS`.
fn recovery_threads() -> usize {
    std::env::var("JNVM_RECOVERY_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

// ---------------------------------------------------------------------------
// Image capture / restore (same conventions as tests/recovery_equivalence.rs).
// ---------------------------------------------------------------------------

fn snapshot(pmem: &Arc<Pmem>) -> Vec<u8> {
    pmem.resync_cache();
    let mut img = vec![0u8; pmem.len() as usize];
    pmem.read_bytes(0, &mut img);
    img
}

fn restore(image: &[u8]) -> Arc<Pmem> {
    let pmem = Pmem::new(PmemConfig::crash_sim(image.len() as u64));
    pmem.write_bytes(0, image);
    pmem.drain_all();
    pmem
}

fn assert_media_matches(pmem: &Arc<Pmem>, oracle: &[u8], label: &str) {
    let mut addr = 0u64;
    while addr < pmem.len() {
        let i = addr as usize;
        let want = u64::from_le_bytes(oracle[i..i + 8].try_into().expect("slice of 8"));
        let got = pmem.media_read_u64(addr);
        assert_eq!(
            got, want,
            "{label}: converged media diverges from the crash-free oracle \
             at byte {addr:#x} ({got:#018x} vs {want:#018x})"
        );
        addr += 8;
    }
}

// ---------------------------------------------------------------------------
// Scenario 1: bank image (replay-heavy — committed and abandoned redo logs).
// ---------------------------------------------------------------------------

const ACCOUNTS: u64 = 8;
const INITIAL: i64 = 1000;
const TRANSFERS: usize = 5;

struct BankCtx {
    _rt: Jnvm,
    bank: JnvmBank,
}

fn bank_setup() -> (Arc<Pmem>, BankCtx) {
    let pmem = Pmem::new(PmemConfig::crash_sim(4 << 20));
    let rt = register_tpcb(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let bank = JnvmBank::create(&rt, ACCOUNTS, INITIAL).expect("bank");
    pmem.psync();
    (pmem, BankCtx { _rt: rt, bank })
}

fn bank_workload(t: usize, ctx: &BankCtx) {
    for i in 0..TRANSFERS {
        let a = ((t * 2 + i) as u64) % ACCOUNTS;
        let b = (a + 3) % ACCOUNTS;
        assert!(ctx.bank.transfer(a, b, 7), "transfer ({a}, {b}) refused");
    }
}

/// A crash image from the middle of a concurrent transfer storm: redo
/// logs in every lifecycle state, in-flight copies, per-worker garbage.
fn torn_bank_image() -> Vec<u8> {
    silence_crash_panics();
    let total = torture_count(NTHREADS, bank_setup, bank_workload);
    assert!(total > 0, "bank workload performed no persistence ops");
    let mut image = None;
    // Interleavings vary run to run, so try a few mid-stream points and
    // keep the last one that actually crashed.
    torture_sweep(
        [total / 3, total / 2, 2 * total / 3],
        FaultPlan::count(),
        NTHREADS,
        bank_setup,
        bank_workload,
        |pmem, _| image = Some(snapshot(pmem)),
    );
    image.expect("no mid-stream crash point fired")
}

// ---------------------------------------------------------------------------
// Scenario 2: dangling-reference graph (mark-heavy — nullification writes).
// ---------------------------------------------------------------------------

persistent_class! {
    pub class Link {
        val value, set_value: i64;
        ref next, set_next, update_next: Link;
    }
}

const LINKS: i64 = 48;

fn torn_graph_image() -> Vec<u8> {
    let pmem = Pmem::new(PmemConfig::crash_sim(2 << 20));
    let rt = JnvmBuilder::new()
        .register::<Link>()
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    for i in 0..LINKS {
        let a = Link::alloc_uninit(&rt);
        a.set_value(i);
        let b = Link::alloc_uninit(&rt);
        b.set_value(i + 1000);
        a.set_next(Some(&b));
        a.pwb();
        b.pwb();
        if i % 3 == 0 {
            b.validate();
        }
        rt.root_put(&format!("n{i}"), &a).expect("root");
    }
    rt.psync();
    pmem.crash(&CrashPolicy::strict()).expect("crash");
    snapshot(&pmem)
}

// ---------------------------------------------------------------------------
// The sweep driver.
// ---------------------------------------------------------------------------

/// Sweep crash points inside a parallel recovery of `image` and verify
/// convergence + idempotence at every crashed point. `verify_extra` runs
/// scenario-specific invariants against the converged runtime.
fn restartable_sweep(
    image: &[u8],
    register: fn(JnvmBuilder) -> JnvmBuilder,
    points: Vec<u64>,
    plan: FaultPlan,
    verify_extra: impl Fn(&Jnvm),
) -> SweepSummary {
    silence_crash_panics();
    let threads = recovery_threads();
    // The crash-free oracle: recover the image once, sequentially, and
    // remember the resulting media.
    let oracle_pmem = restore(image);
    let (oracle_rt, oracle_report) = register(JnvmBuilder::new())
        .open(Arc::clone(&oracle_pmem))
        .expect("oracle recovery");
    drop(oracle_rt);
    let oracle_media = snapshot(&oracle_pmem);
    // The fixpoint oracle: what a recovery of an already-recovered heap
    // reports. (`freed_blocks` stays nonzero at fixpoint — the sweep
    // counts every unmarked block below the bump, free holes included.)
    let (oracle_rt2, oracle_fixpoint) = register(JnvmBuilder::new())
        .open(Arc::clone(&oracle_pmem))
        .expect("oracle fixpoint recovery");
    drop(oracle_rt2);

    sweep_resync(
        points,
        plan,
        || {
            let pmem = restore(image);
            (Arc::clone(&pmem), pmem)
        },
        |pmem| {
            // The workload under injection IS the parallel recovery. A
            // crash inside any worker unwinds the open.
            let _ = register(JnvmBuilder::new())
                .open_with_options(Arc::clone(pmem), RecoveryOptions::parallel(threads))
                .expect("recovery on an intact image cannot fail logically");
        },
        |pmem, report| {
            let label = format!("recovery-crash@{}", report.point);
            // Second recovery, sequential: must succeed and converge.
            let (rt, rep2) = register(JnvmBuilder::new())
                .open(Arc::clone(pmem))
                .expect("re-recovery after mid-recovery crash");
            assert_eq!(
                rep2.live_blocks, oracle_report.live_blocks,
                "{label}: converged live set differs from the oracle"
            );
            verify_extra(&rt);
            drop(rt);
            assert_media_matches(pmem, &oracle_media, &label);
            // Third recovery: a fixpoint — nothing left to replay, free,
            // or nullify.
            let (_rt3, rep3) = register(JnvmBuilder::new())
                .open(Arc::clone(pmem))
                .expect("third recovery");
            assert_eq!(rep3.replayed_logs, 0, "{label}: fixpoint replays a log");
            assert_eq!(rep3.nullified_refs, 0, "{label}: fixpoint nullifies a ref");
            assert_eq!(
                rep3.freed_blocks, oracle_fixpoint.freed_blocks,
                "{label}: fixpoint free-hole count drifts"
            );
            assert_eq!(
                rep3.live_blocks, oracle_report.live_blocks,
                "{label}: fixpoint live set drifts"
            );
        },
    )
}

fn bank_invariants(rt: &Jnvm) {
    let bank = JnvmBank::open(rt).expect("bank reopen");
    assert_eq!(
        bank.total(),
        ACCOUNTS as i64 * INITIAL,
        "a transfer was torn across the double crash"
    );
    for a in 0..ACCOUNTS {
        assert_eq!(
            (bank.balance(a) - INITIAL) % 7,
            0,
            "account {a} holds a partial transfer"
        );
    }
}

fn recovery_op_count(image: &[u8], register: fn(JnvmBuilder) -> JnvmBuilder) -> u64 {
    let threads = recovery_threads();
    count_ops(
        || {
            let pmem = restore(image);
            (Arc::clone(&pmem), pmem)
        },
        |pmem| {
            let _ = register(JnvmBuilder::new())
                .open_with_options(Arc::clone(pmem), RecoveryOptions::parallel(threads))
                .expect("count pass");
        },
    )
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

/// Bounded slice over the bank image: crashes land in replay, mark and
/// sweep of a 4-thread recovery.
#[test]
fn parallel_recovery_of_bank_image_survives_midway_crashes() {
    let image = torn_bank_image();
    let total = recovery_op_count(&image, register_tpcb);
    assert!(total > 0, "recovery performed no persistence ops");
    let summary = restartable_sweep(
        &image,
        register_tpcb,
        strided_points(total, 16),
        FaultPlan::count(),
        bank_invariants,
    );
    assert!(summary.points_crashed > 0, "no crash point fired inside recovery");
}

/// Bounded slice over the dangling-graph image: crashes land in the
/// work-stealing mark's nullification writes and the invalid-child sweep.
#[test]
fn parallel_recovery_of_dangling_graph_survives_midway_crashes() {
    let image = torn_graph_image();
    let total = recovery_op_count(&image, |b| b.register::<Link>());
    assert!(total > 0, "recovery performed no persistence ops");
    let summary = restartable_sweep(
        &image,
        |b| b.register::<Link>(),
        strided_points(total, 12),
        FaultPlan::count(),
        |_| {},
    );
    assert!(summary.points_crashed > 0, "no crash point fired inside recovery");
}

/// Exhaustive: every crash point of the recovery op stream, under the
/// strict policy and two adversarial line-eviction policies. Slow; run
/// with `cargo test --test recovery_restartable -- --ignored`.
#[test]
#[ignore = "exhaustive crash-during-recovery sweep; run with --ignored"]
fn parallel_recovery_survives_exhaustive_crash_sweep() {
    let image = torn_bank_image();
    let total = recovery_op_count(&image, register_tpcb);
    for plan in [
        FaultPlan::count(),
        FaultPlan::count().with_policy(CrashPolicy::adversarial(1)),
        FaultPlan::count().with_policy(CrashPolicy::adversarial(2)),
    ] {
        let summary = restartable_sweep(
            &image,
            register_tpcb,
            // Parallel op totals wobble slightly with scheduling; points
            // past the end count as completed, not crashed.
            (0..total + NTHREADS as u64).collect(),
            plan,
            bank_invariants,
        );
        assert!(summary.points_crashed > 0, "nothing injected");
    }
}
