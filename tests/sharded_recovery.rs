//! Differential testing of the **sharded** recovery fan-out.
//!
//! The contract: recovering N shards concurrently (one recovery pass per
//! shard on its own thread, as `ShardedJnvm::open_with_options` does) is
//! **bit-identical on every shard's media** to recovering the same N
//! crash images one shard after another. Shard heaps are disjoint — that
//! is the whole argument — so cross-shard concurrency must be unable to
//! leak into any recovery decision.
//!
//! The crash images are made interesting the same way the single-pool
//! equivalence suite does it: committed traffic on every shard, plus a
//! crash injected mid-`commit_writes` on one shard so its image carries
//! in-flight redo logs, while the others crash cleanly at a fence
//! boundary.

use std::sync::Arc;

use jnvm_repro::jnvm::{JnvmBuilder, RecoveryOptions};
use jnvm_repro::kvstore::{
    commit_writes, register_kvstore, GridConfig, Record, ShardedKv, WriteOp,
};
use jnvm_repro::pmem::{
    catch_crash, silence_crash_panics, CrashPolicy, FaultPlan, Pmem, PmemConfig,
};

const SHARDS: usize = 3;
const POOL_BYTES: u64 = 16 << 20;

fn zero_cache() -> GridConfig {
    GridConfig {
        cache_capacity: 0,
        ..GridConfig::default()
    }
}

/// Byte-for-byte copy of the device media (post-crash image).
fn snapshot(pmem: &Arc<Pmem>) -> Vec<u8> {
    pmem.resync_cache();
    let mut img = vec![0u8; pmem.len() as usize];
    pmem.read_bytes(0, &mut img);
    img
}

/// Fresh device holding exactly `image` on media.
fn restore(image: &[u8]) -> Arc<Pmem> {
    let pmem = Pmem::new(PmemConfig::crash_sim(image.len() as u64));
    pmem.write_bytes(0, image);
    pmem.drain_all();
    pmem
}

fn assert_media_identical(a: &Arc<Pmem>, b: &Arc<Pmem>, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: device sizes differ");
    let mut addr = 0;
    while addr < a.len() {
        let (wa, wb) = (a.media_read_u64(addr), b.media_read_u64(addr));
        assert_eq!(
            wa, wb,
            "{label}: recovered media diverges at byte {addr:#x} \
             ({wa:#018x} vs {wb:#018x})"
        );
        addr += 8;
    }
}

/// Build a 3-shard store, commit a routed batch on every shard, then
/// crash shard 1 mid-commit (injected) and the others at a clean point.
/// Returns the three crash images and the keys whose durability is
/// guaranteed (the fully-committed first batch).
fn crashed_images() -> (Vec<Vec<u8>>, Vec<String>) {
    silence_crash_panics();
    let pmems: Vec<Arc<Pmem>> = (0..SHARDS)
        .map(|_| Pmem::new(PmemConfig::crash_sim(POOL_BYTES)))
        .collect();
    let kv = ShardedKv::create(&pmems, 8, true, zero_cache()).expect("create");

    // Batch 1: fully committed on every shard — the durability floor.
    let keys: Vec<String> = (0..90).map(|i| format!("key-{i:03}")).collect();
    let mut per_shard: Vec<Vec<WriteOp>> = vec![Vec::new(); SHARDS];
    for k in &keys {
        per_shard[kv.route(k)].push(WriteOp::Set(Record::ycsb(k, &[k.as_bytes().to_vec()])));
    }
    for (s, ops) in per_shard.iter().enumerate() {
        let shard = kv.shard(s);
        let out = commit_writes(&shard.grid, &shard.be, ops);
        assert!(out.results.iter().all(|&r| r), "shard {s} floor batch");
    }

    // Batch 2, shard 1 only, with a crash armed mid-commit: in-flight
    // redo logs land on that shard's image.
    let extra: Vec<WriteOp> = (0..40)
        .map(|i| format!("extra-{i:03}"))
        .filter(|k| kv.route(k) == 1)
        .map(|k| WriteOp::Set(Record::ycsb(&k, &[b"x".to_vec()])))
        .collect();
    assert!(!extra.is_empty(), "no extra keys routed to shard 1");
    pmems[1].arm_faults(FaultPlan::crash_at(50));
    let shard1 = kv.shard(1);
    let outcome = catch_crash(|| {
        commit_writes(&shard1.grid, &shard1.be, &extra);
    });
    assert!(outcome.is_err(), "point 50 must fire inside the batch");
    let injected = pmems[1].faults_frozen();
    assert!(injected);
    // Unwind destructors must not repair the crash image.
    drop(kv);
    pmems[1].disarm_faults();
    pmems[1].resync_cache();
    for p in [&pmems[0], &pmems[2]] {
        p.crash(&CrashPolicy::strict()).expect("clean crash");
    }

    (pmems.iter().map(snapshot).collect(), keys)
}

#[test]
fn concurrent_shard_recovery_is_bit_identical_to_sequential() {
    let (images, floor_keys) = crashed_images();

    // Path A: the engine's concurrent fan-out (all shards at once), each
    // shard's own pass on 2 workers.
    let pa: Vec<Arc<Pmem>> = images.iter().map(|i| restore(i)).collect();
    let (kva, reports) = ShardedKv::open(&pa, true, zero_cache(), RecoveryOptions::parallel(2))
        .expect("concurrent sharded recovery");
    assert_eq!(reports.len(), SHARDS);
    for k in &floor_keys {
        let rec = kva.read(k).unwrap_or_else(|| panic!("{k}: committed write lost"));
        assert_eq!(rec.fields[0].1, k.as_bytes(), "{k}: torn after recovery");
    }
    drop(kva);

    // Path B: the sequential oracle — the same per-shard pass (same
    // thread count, same backend reopen), one shard strictly after the
    // other.
    let pb: Vec<Arc<Pmem>> = images.iter().map(|i| restore(i)).collect();
    for (s, p) in pb.iter().enumerate() {
        let (rt, _report) = register_kvstore(JnvmBuilder::new())
            .open_with_options(Arc::clone(p), RecoveryOptions::parallel(2))
            .unwrap_or_else(|e| panic!("shard {s} sequential recovery: {e}"));
        let be = jnvm_repro::kvstore::JnvmBackend::open(&rt, true)
            .unwrap_or_else(|e| panic!("shard {s} backend reopen: {e}"));
        drop(be);
        drop(rt);
    }

    // The whole claim: per shard, both paths leave the same media image.
    for (s, (a, b)) in pa.iter().zip(&pb).enumerate() {
        a.drain_all();
        b.drain_all();
        assert_media_identical(a, b, &format!("shard {s}"));
    }
}

#[test]
fn sharded_reopen_rejects_aliased_devices() {
    // The disjoint-heaps assertion guards the concurrency argument at the
    // recovery boundary too, not just at create time.
    let p = Pmem::new(PmemConfig::crash_sim(1 << 20));
    let pmems = vec![Arc::clone(&p), p];
    let err = std::panic::catch_unwind(|| {
        let _ = ShardedKv::open(
            &pmems,
            true,
            zero_cache(),
            RecoveryOptions::parallel(1),
        );
    });
    assert!(err.is_err(), "aliased devices must be rejected on open");
}
