//! Cross-process-style restarts: a pool image saved to a real file and
//! loaded into a fresh device recovers the full object graph (the
//! `JNVM.init("/mnt/pmem/...")` lifecycle of Figure 3).

use std::sync::Arc;

use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::{JnvmBuilder, PObject};
use jnvm_repro::jpdt::{register_jpdt, PBytes, PString, PStringHashMap};
use jnvm_repro::pmem::{Pmem, PmemConfig};

#[test]
fn image_round_trip_recovers_object_graph() {
    let path = std::env::temp_dir().join(format!(
        "jnvm-restart-image-{}-{:?}.img",
        std::process::id(),
        std::thread::current().id()
    ));

    // "Process 1": build a store and persist the pool image.
    {
        let pmem = Pmem::new(PmemConfig::crash_sim(32 << 20));
        let rt = register_jpdt(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .expect("pool");
        let map = PStringHashMap::new(&rt).expect("map");
        rt.root_put("store", &map).expect("root");
        for i in 0..64 {
            let v = PBytes::new(&rt, format!("payload-{i}").as_bytes()).expect("blob");
            map.put(format!("key-{i}"), v.addr()).expect("put");
        }
        let banner = PString::from_str_in(&rt, "hello from process one").expect("banner");
        rt.root_put("banner", &banner).expect("root");
        // The image captures only fenced (media) state, like pulling the
        // plug and reading the DIMM back.
        pmem.save(&path).expect("save image");
    }

    // "Process 2": load the image, recover, verify.
    {
        let pmem = Pmem::load(&path, PmemConfig::crash_sim(0)).expect("load image");
        let (rt, report) = register_jpdt(JnvmBuilder::new())
            .open(Arc::clone(&pmem))
            .expect("recovery");
        assert!(report.live_objects >= 64);
        let map = rt
            .root_get_as::<PStringHashMap>("store")
            .expect("typed")
            .expect("map survived");
        assert_eq!(map.len(), 64);
        for i in 0..64 {
            let v = map.get(&format!("key-{i}")).expect("key survived");
            assert_eq!(
                rt.read_pobject::<PBytes>(v).expect("blob").to_vec(),
                format!("payload-{i}").into_bytes()
            );
        }
        let banner = rt
            .root_get_as::<PString>("banner")
            .expect("typed")
            .expect("banner survived");
        assert_eq!(banner.to_string_lossy(), "hello from process one");

        // The relocatability requirement (§4.4): nothing in the pool
        // depended on the original mapping, which this cross-device load
        // already proved; push it once more through another image cycle.
        let path2 = path.with_extension("img2");
        pmem.save(&path2).expect("second save");
        let pmem2 = Pmem::load(&path2, PmemConfig::perf(0)).expect("second load");
        let (rt2, _) = register_jpdt(JnvmBuilder::new())
            .open(pmem2)
            .expect("second recovery");
        assert_eq!(rt2.root_len(), 2);
        std::fs::remove_file(&path2).ok();
    }
    std::fs::remove_file(&path).ok();
}
