//! Exhaustive crash-point sweeps over the persistence-relevant op stream.
//!
//! Where `tests/crash_recovery.rs` crashes at *random* moments with
//! adversarial line eviction, these tests use the `jnvm-pmem` injection
//! engine (`FaultPlan` / `CrashAt`) plus the `jnvm-faultsim` sweep driver
//! to crash at **every** persistence-relevant operation (store, `pwb`,
//! `pfence`, `psync`) of three canonical workloads:
//!
//! 1. the failure-atomic pair transfer (the §4.2 redo-log commit sequence),
//! 2. a `JnvmBackend` insert + read-modify-write through the `DataGrid`,
//! 3. redo-log recovery itself — a crash *during replay* must leave a state
//!    from which a second recovery still reaches the committed image.
//!
//! After each injected crash the pool is re-opened and the workload's
//! atomicity/durability contract is asserted, including a block-leak check
//! against crash-free baselines.

use std::sync::Arc;

use jnvm_repro::faultsim;
use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::{
    commit_phase, persistent_class, Jnvm, JnvmBuilder, PObject, RecoveryReport,
};
use jnvm_repro::jpdt::{register_jpdt, PBytes, PI64SkipMap};
use jnvm_repro::kvstore::{
    register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend, Record,
};
use jnvm_repro::pmem::{
    catch_crash, CrashPolicy, FaultPlan, Pmem, PmemConfig, SanitizeMode,
};

use proptest::prelude::*;

persistent_class! {
    pub class Pair {
        val left, set_left: i64;
        val right, set_right: i64;
    }
}

// ---------------------------------------------------------------------------
// Workload 1: the failure-atomic pair transfer (§4.2 commit sequence).
// ---------------------------------------------------------------------------

struct FaCtx {
    rt: Jnvm,
    p: Pair,
}

fn reopen_pair(pmem: &Arc<Pmem>) -> (Jnvm, RecoveryReport) {
    register_jpdt(JnvmBuilder::new())
        .register::<Pair>()
        .open(Arc::clone(pmem))
        .expect("recovery")
}

/// Fresh pool with a published pair at (1500, 500). A warm-up transfer has
/// already run, so the redo log and the in-flight block pool are in steady
/// state: every sweep instance of the workload performs the identical op
/// stream and allocation pattern.
fn fa_setup() -> (Arc<Pmem>, FaCtx) {
    let pmem = Pmem::new(PmemConfig::crash_sim(1 << 20));
    let rt = register_jpdt(JnvmBuilder::new())
        .register::<Pair>()
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let p = rt.fa(|| {
        let p = Pair::alloc_uninit(&rt);
        p.set_left(1600);
        p.set_right(400);
        rt.root_put("pair", &p).expect("root");
        p
    });
    rt.fa(|| {
        p.set_left(p.left() - 100);
        p.set_right(p.right() + 100);
    });
    pmem.psync();
    (pmem, FaCtx { rt, p })
}

/// The region under test: one failure-atomic 100-unit transfer,
/// (1500, 500) -> (1400, 600).
fn fa_workload(ctx: &FaCtx) {
    ctx.rt.fa(|| {
        ctx.p.set_left(ctx.p.left() - 100);
        ctx.p.set_right(ctx.p.right() + 100);
    });
}

/// Crash-free reference images: `(left, right, live_blocks)` recovered when
/// the power fails (strict policy: every unflushed line lost) right after
/// `setup`, and right after a completed workload.
fn fa_baselines() -> ((i64, i64, u64), (i64, i64, u64)) {
    let observe = |run_workload: bool| {
        let (pmem, ctx) = fa_setup();
        if run_workload {
            fa_workload(&ctx);
        }
        drop(ctx);
        pmem.crash(&CrashPolicy::strict()).expect("crash");
        let (rt, report) = reopen_pair(&pmem);
        let p = rt
            .root_get_as::<Pair>("pair")
            .expect("typed")
            .expect("pair survived");
        (p.left(), p.right(), report.live_blocks)
    };
    (observe(false), observe(true))
}

fn fa_verify(pre: (i64, i64, u64), post: (i64, i64, u64), pmem: &Arc<Pmem>, point: u64) {
    let (rt, report) = reopen_pair(pmem);
    let p = rt
        .root_get_as::<Pair>("pair")
        .expect("typed")
        .expect("pair survived crash");
    let state = (p.left(), p.right());
    assert_eq!(
        p.left() + p.right(),
        2000,
        "crash point {point}: transfer was torn: {state:?}"
    );
    let expected_blocks = if state == (pre.0, pre.1) {
        pre.2
    } else if state == (post.0, post.1) {
        post.2
    } else {
        panic!("crash point {point}: impossible recovered state {state:?}");
    };
    assert_eq!(
        report.live_blocks, expected_blocks,
        "crash point {point}: leaked or lost blocks (state {state:?})"
    );
}

/// Acceptance sweep: every crash point of the FA pair transfer preserves
/// the sum, recovers to exactly the old or the new state, and leaks no
/// in-flight blocks.
#[test]
fn fa_transfer_survives_every_crash_point() {
    let (pre, post) = fa_baselines();
    assert_eq!((pre.0, pre.1), (1500, 500));
    assert_eq!((post.0, post.1), (1400, 600));
    let summary = faultsim::sweep_all(
        FaultPlan::count(),
        fa_setup,
        fa_workload,
        |pmem, report| fa_verify(pre, post, pmem, report.point),
    );
    assert!(summary.points_crashed > 0, "workload performed no ops");
}

// ---------------------------------------------------------------------------
// Workload 3 (depends on workload 1's machinery): crash during recovery
// replay. Recovery must be idempotent — power can fail while the redo log
// is being replayed, and the *next* recovery still reaches the committed
// image.
// ---------------------------------------------------------------------------

/// Find the first crash point of the FA transfer whose crash lands after
/// the commit point (the log is durable but not yet applied): the state a
/// replaying recovery starts from.
fn first_committed_unapplied_point() -> u64 {
    let total = faultsim::count_ops(fa_setup, fa_workload);
    for i in 0..total {
        let (pmem, ctx) = fa_setup();
        pmem.arm_faults(FaultPlan::crash_at(i));
        let outcome = catch_crash(|| fa_workload(&ctx));
        drop(ctx);
        pmem.disarm_faults();
        if outcome.is_err() && commit_phase().is_committed() {
            return i;
        }
    }
    panic!("no crash point lands between commit and apply");
}

/// Build the committed-but-unapplied image deterministically.
fn replay_setup(point: u64) -> (Arc<Pmem>, Arc<Pmem>) {
    let (pmem, ctx) = fa_setup();
    pmem.arm_faults(FaultPlan::crash_at(point));
    let outcome = catch_crash(|| fa_workload(&ctx));
    drop(ctx);
    pmem.disarm_faults();
    assert!(outcome.is_err(), "expected an injected crash at {point}");
    assert!(commit_phase().is_committed());
    (Arc::clone(&pmem), pmem)
}

#[test]
fn recovery_replay_survives_every_crash_point() {
    let (_, post) = fa_baselines();
    let seed_point = first_committed_unapplied_point();
    let summary = faultsim::sweep_all(
        FaultPlan::count(),
        || replay_setup(seed_point),
        |pmem| {
            // The workload under injection is recovery itself.
            let _ = reopen_pair(pmem);
        },
        |pmem, report| {
            // Second recovery after a torn first recovery: replay must be
            // idempotent, always reaching the committed (1400, 600) image.
            let (rt, rep) = reopen_pair(pmem);
            let p = rt
                .root_get_as::<Pair>("pair")
                .expect("typed")
                .expect("pair survived replay crash");
            assert_eq!(
                (p.left(), p.right()),
                (1400, 600),
                "replay crash point {}: committed transfer lost or torn",
                report.point
            );
            assert_eq!(
                rep.live_blocks, post.2,
                "replay crash point {}: leaked blocks",
                report.point
            );
        },
    );
    assert!(summary.points_crashed > 0, "recovery performed no ops");
}

// ---------------------------------------------------------------------------
// Workload 2: JnvmBackend (J-PFA flavour) insert + RMW through the
// DataGrid.
// ---------------------------------------------------------------------------

struct GridCtx {
    _rt: Jnvm,
    grid: DataGrid,
}

const K1_OLD: &[u8] = b"aaaa";
const K1_NEW: &[u8] = b"AAAA";

fn grid_setup() -> (Arc<Pmem>, GridCtx) {
    let pmem = Pmem::new(PmemConfig::crash_sim(4 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let be = JnvmBackend::create(&rt, 1, true).expect("backend");
    let grid = DataGrid::new(
        Arc::new(be),
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    );
    assert!(grid.insert(&Record::ycsb("k1", &[K1_OLD.to_vec(), b"bbbb".to_vec()])));
    pmem.psync();
    (pmem, GridCtx { _rt: rt, grid })
}

/// Insert a second record, then RMW the first record's field 0. The new
/// value has the same length as the old one so every recovered state has
/// the same per-record block count.
fn grid_workload(ctx: &GridCtx) {
    ctx.grid
        .insert(&Record::ycsb("k2", &[b"cccc".to_vec(), b"dddd".to_vec()]));
    ctx.grid.rmw("k1", 0, K1_NEW);
}

fn grid_reopen(pmem: &Arc<Pmem>) -> (JnvmBackend, RecoveryReport) {
    let (rt, report) = register_kvstore(JnvmBuilder::new())
        .open(Arc::clone(pmem))
        .expect("recovery");
    let be = JnvmBackend::open(&rt, true).expect("backend");
    (be, report)
}

/// `(live_blocks before k2 exists, live_blocks after the full workload)`.
fn grid_baselines() -> (u64, u64) {
    let observe = |run_workload: bool| {
        let (pmem, ctx) = grid_setup();
        if run_workload {
            grid_workload(&ctx);
        }
        drop(ctx);
        pmem.crash(&CrashPolicy::strict()).expect("crash");
        grid_reopen(&pmem).1.live_blocks
    };
    (observe(false), observe(true))
}

fn grid_verify(blocks_pre: u64, blocks_post: u64, pmem: &Arc<Pmem>, point: u64) {
    let (be, report) = grid_reopen(pmem);
    let k1 = be.read("k1").expect("k1 lost");
    let f0 = &k1.fields[0].1;
    assert!(
        f0 == K1_OLD || f0 == K1_NEW,
        "crash point {point}: k1 field0 torn: {f0:?}"
    );
    assert_eq!(
        k1.fields[1].1, b"bbbb",
        "crash point {point}: k1 field1 damaged by unrelated crash"
    );
    let k2 = be.read("k2");
    match &k2 {
        None => {}
        Some(rec) => {
            // All-or-nothing: a recovered k2 is the complete record.
            assert_eq!(rec.fields[0].1, b"cccc", "crash point {point}: k2 torn");
            assert_eq!(rec.fields[1].1, b"dddd", "crash point {point}: k2 torn");
        }
    }
    // Program order: the RMW ran after the insert committed, so a new k1
    // value implies k2 is present.
    if f0 == K1_NEW {
        assert!(
            k2.is_some(),
            "crash point {point}: rmw applied but earlier insert lost"
        );
    }
    let expected_blocks = if k2.is_some() { blocks_post } else { blocks_pre };
    assert_eq!(
        report.live_blocks, expected_blocks,
        "crash point {point}: leaked or lost blocks (k2 present: {})",
        k2.is_some()
    );
}

/// Default sweep: a representative stride over the grid workload's crash
/// points (the exhaustive version runs behind `--ignored`).
#[test]
fn grid_insert_rmw_survives_strided_crash_points() {
    let (blocks_pre, blocks_post) = grid_baselines();
    let total = faultsim::count_ops(grid_setup, grid_workload);
    let points = faultsim::strided_points(total, 48);
    let summary = faultsim::sweep(
        points,
        FaultPlan::count(),
        grid_setup,
        grid_workload,
        |pmem, report| grid_verify(blocks_pre, blocks_post, pmem, report.point),
    );
    assert!(summary.points_crashed > 0);
    assert_eq!(summary.points_completed, 0);
}

/// Exhaustive version of the grid sweep: every crash point. Slow; run with
/// `cargo test -- --ignored`.
#[test]
#[ignore = "exhaustive sweep; run with --ignored"]
fn grid_insert_rmw_survives_every_crash_point() {
    let (blocks_pre, blocks_post) = grid_baselines();
    let summary = faultsim::sweep_all(
        FaultPlan::count(),
        grid_setup,
        grid_workload,
        |pmem, report| grid_verify(blocks_pre, blocks_post, pmem, report.point),
    );
    assert!(summary.points_crashed > 0);
}

// ---------------------------------------------------------------------------
// Workload 4: the jpdt skip-list's publish paths — insert a new key,
// overwrite an existing key's value slot, remove a key — swept with the
// persist-ordering sanitizer in Strict mode. The map's value slot is a
// ref slot (recovery GC chases it), so values are published `PBytes`
// addresses, never raw integers.
// ---------------------------------------------------------------------------

struct SkCtx {
    rt: Jnvm,
    m: PI64SkipMap,
}

/// Fresh strict-sanitized pool with a skip-list of three published keys,
/// synced: the deterministic S0 image every sweep instance starts from.
fn sk_setup() -> (Arc<Pmem>, SkCtx) {
    let pmem = Pmem::new(PmemConfig::crash_sim(4 << 20).with_sanitize(SanitizeMode::Strict));
    let rt = register_jpdt(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let m = PI64SkipMap::new(&rt).expect("map");
    rt.root_put("sk", &m).expect("root");
    for k in [10i64, 20, 30] {
        let v = PBytes::new(&rt, format!("init-{k}").as_bytes()).expect("blob");
        m.put(k, v.addr()).expect("put");
    }
    pmem.psync();
    (pmem, SkCtx { rt, m })
}

/// The publish paths under test, in program order: insert key 25 (fresh
/// tower), overwrite key 20's value slot (old blob freed), remove key 30
/// (tower unlink, blob freed). `upto` truncates the sequence so the same
/// code builds the crash-free baseline for every prefix.
fn sk_mutations(ctx: &SkCtx, upto: usize) {
    let SkCtx { rt, m } = ctx;
    if upto >= 1 {
        let v = PBytes::new(rt, b"ins-25").expect("blob");
        m.put(25, v.addr()).expect("insert");
    }
    if upto >= 2 {
        let v = PBytes::new(rt, b"upd-20").expect("blob");
        if let Some(old) = m.put(20, v.addr()).expect("update") {
            rt.free_addr(old);
        }
        rt.pmem().pfence();
    }
    if upto >= 3 {
        if let Some(old) = m.remove(&30) {
            rt.free_addr(old);
        }
        rt.pmem().pfence();
    }
}

fn sk_workload(ctx: &SkCtx) {
    sk_mutations(ctx, 3);
}

fn sk_reopen(pmem: &Arc<Pmem>) -> (Jnvm, RecoveryReport) {
    register_jpdt(JnvmBuilder::new())
        .open(Arc::clone(pmem))
        .expect("recovery")
}

/// Recovered map image as ordered `(key, value bytes)` pairs.
fn sk_state(rt: &Jnvm) -> Vec<(i64, Vec<u8>)> {
    let m = rt
        .root_get_as::<PI64SkipMap>("sk")
        .expect("typed")
        .expect("map survived");
    m.keys(16)
        .into_iter()
        .map(|k| {
            let addr = m.get(&k).expect("published key holds a value ref");
            (k, PBytes::resurrect(rt, addr).to_vec())
        })
        .collect()
}

/// A crash-free reference image: the map state plus its block budget.
type SkBaseline = (Vec<(i64, Vec<u8>)>, u64);

/// Crash-free `(state, live_blocks)` images after each mutation prefix,
/// S0 (setup only) through S3 (full workload).
fn sk_baselines() -> Vec<SkBaseline> {
    (0..=3)
        .map(|upto| {
            let (pmem, ctx) = sk_setup();
            sk_mutations(&ctx, upto);
            drop(ctx);
            pmem.crash(&CrashPolicy::strict()).expect("crash");
            let (rt, report) = sk_reopen(&pmem);
            (sk_state(&rt), report.live_blocks)
        })
        .collect()
}

/// A recovered image must equal exactly one mutation prefix — a torn
/// tower, a half-updated value slot, or a half-unlinked key matches none
/// — and carry that prefix's block budget (no leaked blobs, towers, or
/// in-flight allocations).
fn sk_verify(baselines: &[SkBaseline], pmem: &Arc<Pmem>, point: u64) {
    let (rt, report) = sk_reopen(pmem);
    let state = sk_state(&rt);
    let hit = baselines
        .iter()
        .find(|(s, _)| *s == state)
        .unwrap_or_else(|| {
            panic!(
                "crash point {point}: recovered skip-list state matches no \
                 mutation prefix: {state:?}"
            )
        });
    assert_eq!(
        report.live_blocks,
        hit.1,
        "crash point {point}: leaked or lost blocks (keys {:?})",
        state.iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );
}

/// Default sweep: a representative stride over the skip-list publish
/// paths, sanitizer strict (the exhaustive version runs behind
/// `--ignored`).
#[test]
fn skiplist_publish_paths_survive_strided_crash_points() {
    let baselines = sk_baselines();
    // The four prefixes are pairwise distinct, so a recovered state
    // identifies its prefix — and its block budget — unambiguously.
    for i in 0..baselines.len() {
        for j in i + 1..baselines.len() {
            assert_ne!(baselines[i].0, baselines[j].0, "prefixes {i} and {j} collide");
        }
    }
    let total = faultsim::count_ops(sk_setup, sk_workload);
    let points = faultsim::strided_points(total, 48);
    let summary = faultsim::sweep(
        points,
        FaultPlan::count(),
        sk_setup,
        sk_workload,
        |pmem, report| sk_verify(&baselines, pmem, report.point),
    );
    assert!(summary.points_crashed > 0);
    assert_eq!(summary.points_completed, 0);
}

/// Exhaustive version: every crash point of the skip-list publish paths.
/// Slow; run with `cargo test -- --ignored`.
#[test]
#[ignore = "exhaustive sweep; run with --ignored"]
fn skiplist_publish_paths_survive_every_crash_point() {
    let baselines = sk_baselines();
    let summary = faultsim::sweep_all(
        FaultPlan::count(),
        sk_setup,
        sk_workload,
        |pmem, report| sk_verify(&baselines, pmem, report.point),
    );
    assert!(summary.points_crashed > 0);
}

// ---------------------------------------------------------------------------
// Randomized satellite: random transfer count, random crash point — the
// sum invariant must hold wherever the power fails.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fa_random_workload_random_crash_point(
        transfers in 1usize..4,
        point_sel in 0u64..1_000_000,
    ) {
        let setup = fa_setup;
        let workload = |ctx: &FaCtx| {
            for _ in 0..transfers {
                fa_workload(ctx);
            }
        };
        let total = faultsim::count_ops(setup, workload);
        let point = point_sel % total;
        let summary = faultsim::sweep(
            [point],
            FaultPlan::count(),
            setup,
            workload,
            |pmem, report| {
                let (rt, _) = reopen_pair(pmem);
                let p = rt
                    .root_get_as::<Pair>("pair")
                    .expect("typed")
                    .expect("pair survived");
                let (l, r) = (p.left(), p.right());
                assert_eq!(l + r, 2000, "crash point {}: torn transfer", report.point);
                // Transfers apply in order: the recovered left value is the
                // starting 1500 minus 100 per fully-applied transfer.
                assert!(
                    (0..=transfers as i64).any(|k| l == 1500 - 100 * k),
                    "crash point {}: impossible state ({l}, {r})",
                    report.point
                );
            },
        );
        prop_assert_eq!(summary.points_crashed, 1);
    }
}
