//! Concurrent crash-torture: N writer threads hammer a shared pool while
//! the injection engine kills the power mid-flight, then recovery is held
//! to the same invariants a sequential crash must satisfy.
//!
//! Where `tests/crash_points.rs` sweeps the op stream of a *single*
//! thread, these tests drive `jnvm_faultsim::torture_sweep`: the crash
//! point is an index into the **interleaved** op stream of all workers,
//! so which thread triggers the failure — and what every other thread was
//! in the middle of — varies from run to run. Two workloads:
//!
//! 1. TPC-B-style bank transfers (failure-atomic): the total balance is
//!    conserved at every crash point, and the recovered image holds no
//!    leaked redo-log or account blocks;
//! 2. DataGrid insert / RMW / remove churn over the `JnvmBackend`
//!    (J-PFA flavour): every recovered record is complete and untorn, and
//!    block accounting closes exactly (records + a bounded number of
//!    redo logs).
//!
//! The block-accounting constants (`log_blocks`, `rec_blocks`) are
//! *measured* from deterministic single-threaded runs rather than
//! hard-coded, so the tests survive layout changes.

use std::sync::Arc;

use jnvm_repro::faultsim::{
    strided_points, torture_count, torture_sweep, TortureOutcome,
};
use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::{Jnvm, JnvmBuilder, RecoveryReport};
use jnvm_repro::kvstore::{
    register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend, Record,
};
use jnvm_repro::pmem::{
    silence_crash_panics, CrashPolicy, FaultPlan, Pmem, PmemConfig,
};
use jnvm_repro::tpcb::{register_tpcb, Bank, JnvmBank};

const NTHREADS: usize = 4;

// ---------------------------------------------------------------------------
// Workload 1: concurrent failure-atomic bank transfers.
// ---------------------------------------------------------------------------

const ACCOUNTS: u64 = 8;
const INITIAL: i64 = 1000;
const TRANSFERS: usize = 5;

struct BankCtx {
    /// Keeps the runtime (and its heap/pools) alive for the workload's lifetime.
    _rt: Jnvm,
    bank: JnvmBank,
}

fn bank_setup() -> (Arc<Pmem>, BankCtx) {
    let pmem = Pmem::new(PmemConfig::crash_sim(4 << 20));
    let rt = register_tpcb(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let bank = JnvmBank::create(&rt, ACCOUNTS, INITIAL).expect("bank");
    pmem.psync();
    (pmem, BankCtx { _rt: rt, bank })
}

/// Each worker moves money around its own rotation of account pairs; the
/// pairs of different workers overlap, so transfers contend on accounts,
/// stripe locks, and the redo-log pool.
fn bank_workload(t: usize, ctx: &BankCtx) {
    for i in 0..TRANSFERS {
        let a = ((t * 2 + i) as u64) % ACCOUNTS;
        let b = (a + 3) % ACCOUNTS;
        assert!(ctx.bank.transfer(a, b, 7), "transfer ({a}, {b}) refused");
    }
}

fn bank_reopen(pmem: &Arc<Pmem>) -> (Jnvm, RecoveryReport) {
    register_tpcb(JnvmBuilder::new())
        .open(Arc::clone(pmem))
        .expect("recovery")
}

/// Measured baselines: `(base, log_blocks)` where `base` is the live block
/// count of the freshly-created bank (no redo log exists yet) and
/// `log_blocks` is the footprint of one redo log (created lazily by the
/// first failure-atomic block and retained in the free pool afterwards).
fn bank_baselines() -> (u64, u64) {
    let observe = |run_workload: bool| {
        let (pmem, ctx) = bank_setup();
        if run_workload {
            bank_workload(0, &ctx);
        }
        drop(ctx);
        pmem.crash(&CrashPolicy::strict()).expect("crash");
        bank_reopen(&pmem).1.live_blocks
    };
    let base = observe(false);
    let with_one_log = observe(true);
    assert!(
        with_one_log > base,
        "single-threaded transfers created no redo log"
    );
    (base, with_one_log - base)
}

/// The concurrent-crash contract: money is conserved, per-account balances
/// are reachable by whole transfers, block accounting closes with at most
/// one redo log per worker, and recovery is idempotent.
fn bank_verify(base: u64, log_blocks: u64, pmem: &Arc<Pmem>, outcome: &TortureOutcome) {
    let point = outcome.point;
    let (rt, report) = bank_reopen(pmem);
    let bank = JnvmBank::open(&rt).expect("bank reopen");
    assert_eq!(
        bank.total(),
        ACCOUNTS as i64 * INITIAL,
        "crash point {point}: a transfer was torn (money created or destroyed)"
    );
    for a in 0..ACCOUNTS {
        let bal = bank.balance(a);
        assert_eq!(
            (bal - INITIAL) % 7,
            0,
            "crash point {point}: account {a} holds a partial transfer ({bal})"
        );
    }
    assert!(
        report.live_blocks >= base,
        "crash point {point}: account or root blocks lost ({} < {base})",
        report.live_blocks
    );
    let extra = report.live_blocks - base;
    assert_eq!(
        extra % log_blocks,
        0,
        "crash point {point}: leaked {extra} blocks (not a whole number of redo logs)"
    );
    assert!(
        extra / log_blocks <= NTHREADS as u64,
        "crash point {point}: {} redo logs recovered for {NTHREADS} workers",
        extra / log_blocks
    );
    // Recovery idempotence: crash again before any new work.
    let first = (report.live_blocks, bank.total());
    drop(bank);
    drop(rt);
    pmem.crash(&CrashPolicy::strict()).expect("recrash");
    let (rt2, report2) = bank_reopen(pmem);
    let bank2 = JnvmBank::open(&rt2).expect("bank reopen 2");
    assert_eq!(
        (report2.live_blocks, bank2.total()),
        first,
        "crash point {point}: recovery is not idempotent"
    );
}

/// Acceptance: ≥ 4 writers, crash points swept across the interleaved op
/// stream, zero torn states and zero leaked blocks.
#[test]
fn bank_transfers_survive_concurrent_crash_sweep() {
    silence_crash_panics();
    let (base, log_blocks) = bank_baselines();
    let total = torture_count(NTHREADS, bank_setup, bank_workload);
    assert!(total > 0, "bank workload performed no persistence ops");
    let summary = torture_sweep(
        strided_points(total, 24),
        FaultPlan::count(),
        NTHREADS,
        bank_setup,
        bank_workload,
        |pmem, outcome| bank_verify(base, log_blocks, pmem, outcome),
    );
    assert!(
        summary.points_injected > 0,
        "no crash point fired inside the concurrent workload"
    );
}

/// Full randomized torture: every crash point of the interleaved stream,
/// under several adversarial line-eviction policies. Slow; run with
/// `cargo test --test concurrent_torture -- --ignored`.
#[test]
#[ignore = "full randomized torture sweep; run with --ignored"]
fn bank_transfers_survive_exhaustive_randomized_torture() {
    silence_crash_panics();
    let (base, log_blocks) = bank_baselines();
    let total = torture_count(NTHREADS, bank_setup, bank_workload);
    for seed in 0..4u64 {
        let plan = FaultPlan::count().with_policy(CrashPolicy::adversarial(seed));
        // Op totals vary run-to-run with the interleaving, so sweep a bit
        // past the counted total; late points that complete instead of
        // crashing still verify the finished image.
        let summary = torture_sweep(
            0..total + NTHREADS as u64,
            plan,
            NTHREADS,
            bank_setup,
            bank_workload,
            |pmem, outcome| bank_verify(base, log_blocks, pmem, outcome),
        );
        assert!(summary.points_injected > 0, "seed {seed}: nothing injected");
    }
}

// ---------------------------------------------------------------------------
// Workload 2: DataGrid insert / RMW / remove churn over the J-PFA backend.
// ---------------------------------------------------------------------------

const KEYS_PER_THREAD: usize = 4;
const CHURN_ROUNDS: usize = 6;

fn grid_key(t: usize, k: usize) -> String {
    format!("t{t}k{k}")
}

/// 8-byte value: a per-key prefix plus a round tag, so a recovered field
/// proves which write it came from (and that no other record's bytes bled
/// into it).
fn grid_val(t: usize, k: usize, tag: &str) -> Vec<u8> {
    format!("{t:02}{k:02}{tag}").into_bytes()
}

struct GridCtx {
    /// Keeps the runtime (and its heap/pools) alive for the workload's lifetime.
    _rt: Jnvm,
    grid: DataGrid,
}

fn grid_setup() -> (Arc<Pmem>, GridCtx) {
    let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let be = JnvmBackend::create(&rt, 2, true).expect("backend");
    let grid = DataGrid::new(
        Arc::new(be),
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    );
    for t in 0..NTHREADS {
        for k in 0..KEYS_PER_THREAD {
            let v = grid_val(t, k, "init");
            assert!(grid.insert(&Record::ycsb(&grid_key(t, k), &[v.clone(), v])));
        }
    }
    pmem.psync();
    (pmem, GridCtx { _rt: rt, grid })
}

/// Each worker churns its own keys (RMW, remove, re-insert) so per-key
/// outcomes stay predictable while the heap, redo-log pool, and map shards
/// are shared across all workers.
fn grid_workload(t: usize, ctx: &GridCtx) {
    for i in 0..CHURN_ROUNDS {
        for k in 0..KEYS_PER_THREAD {
            let key = grid_key(t, k);
            let tag = format!("{i:04}");
            match i % 3 {
                0 => {
                    assert!(ctx.grid.rmw(&key, 0, &grid_val(t, k, &tag)));
                }
                1 => {
                    assert!(ctx.grid.remove(&key));
                }
                _ => {
                    let v = grid_val(t, k, &tag);
                    assert!(ctx.grid.insert(&Record::ycsb(&key, &[v.clone(), v])));
                }
            }
        }
    }
}

fn grid_reopen(pmem: &Arc<Pmem>) -> (Jnvm, JnvmBackend, RecoveryReport) {
    let (rt, report) = register_kvstore(JnvmBuilder::new())
        .open(Arc::clone(pmem))
        .expect("recovery");
    let be = JnvmBackend::open(&rt, true).expect("backend reopen");
    (rt, be, report)
}

/// Measured grid baselines: `(full, rec_blocks, drained)` — the live block
/// count of the complete 16-record image (which includes the one redo log
/// the single-threaded setup created), the per-record footprint (record +
/// field blobs + map entry + key blob; all keys/values are uniform sizes),
/// and the footprint of the image after every record has been removed
/// again (map skeleton + one redo log, no pool slabs).
fn grid_baselines() -> (u64, u64, u64) {
    let observe = |removals: usize| {
        let (pmem, ctx) = grid_setup();
        for i in 0..removals {
            let key = grid_key(i / KEYS_PER_THREAD, i % KEYS_PER_THREAD);
            assert!(ctx.grid.remove(&key));
        }
        drop(ctx);
        pmem.crash(&CrashPolicy::strict()).expect("crash");
        grid_reopen(&pmem).2.live_blocks
    };
    let full = observe(0);
    let minus_one = observe(1);
    let drained = observe(NTHREADS * KEYS_PER_THREAD);
    assert!(full > minus_one, "removing a record freed no blocks");
    assert!(minus_one > drained, "draining the grid freed no blocks");
    (full, full - minus_one, drained)
}

/// Per-field values a recovered record may legally hold. Field 0 is also
/// the RMW target; field 1 only changes on whole-record re-inserts.
fn allowed_tags(field: usize) -> &'static [&'static str] {
    if field == 0 {
        &["init", "0000", "0002", "0003", "0005"]
    } else {
        &["init", "0002", "0005"]
    }
}

fn grid_verify(
    full: u64,
    rec_blocks: u64,
    drained_base: u64,
    log_blocks: u64,
    pmem: &Arc<Pmem>,
    outcome: &TortureOutcome,
) {
    let point = outcome.point;
    let (_rt, be, report) = grid_reopen(pmem);
    let mut present = 0u64;
    for t in 0..NTHREADS {
        for k in 0..KEYS_PER_THREAD {
            let key = grid_key(t, k);
            let Some(rec) = be.read(&key) else { continue };
            present += 1;
            assert_eq!(
                rec.fields.len(),
                2,
                "crash point {point}: {key} recovered with a partial field set"
            );
            let prefix = format!("{t:02}{k:02}").into_bytes();
            for (f, (_, value)) in rec.fields.iter().enumerate() {
                assert_eq!(
                    value.len(),
                    8,
                    "crash point {point}: {key} field {f} torn: {value:?}"
                );
                assert_eq!(
                    &value[..4],
                    &prefix[..],
                    "crash point {point}: {key} field {f} holds another record's bytes: {value:?}"
                );
                let tag = std::str::from_utf8(&value[4..]).unwrap_or("?");
                assert!(
                    allowed_tags(f).contains(&tag),
                    "crash point {point}: {key} field {f} holds a value never written whole: {value:?}"
                );
            }
        }
    }
    assert_eq!(
        be.len() as u64,
        present,
        "crash point {point}: backend len disagrees with reachable records"
    );
    // Block accounting, pass 1 — a bounded model check. The grid's keys and
    // 8-byte field values are pool-allocated (§4.4): many slots share one
    // slab block, and which slabs survive a concurrent remove/re-insert
    // churn depends on the interleaving. The live count may therefore
    // legally drift a few *slab* blocks either way from the single-threaded
    // per-record model, so this pass only bounds it; pass 2 below is exact.
    let total_keys = (NTHREADS * KEYS_PER_THREAD) as u64;
    assert!(present <= total_keys);
    let expected_records = full - (total_keys - present) * rec_blocks;
    let slab_slack = NTHREADS as u64;
    assert!(
        report.live_blocks + slab_slack >= expected_records,
        "crash point {point}: lost blocks ({} live, ~{expected_records} expected for {present} records)",
        report.live_blocks
    );
    assert!(
        report.live_blocks <= expected_records + (NTHREADS as u64 - 1) * log_blocks + slab_slack,
        "crash point {point}: leaked blocks ({} live, ~{expected_records} expected for {present} records)",
        report.live_blocks
    );
    // Block accounting, pass 2 — exact. Drain every surviving record, crash
    // again, and require the footprint to return to the drained baseline
    // plus whole redo logs (the directory retains up to one log per worker
    // thread, and logs are never reclaimed). Slab packing cannot hide a
    // leak here: with no records left, every pool slab must be empty and
    // collected, so any stray block shows up as a non-multiple of the log
    // size. A lost block would already have made one of the drains fail.
    for t in 0..NTHREADS {
        for k in 0..KEYS_PER_THREAD {
            let key = grid_key(t, k);
            if be.read(&key).is_some() {
                assert!(
                    be.remove(&key),
                    "crash point {point}: {key} readable but not removable"
                );
            }
        }
    }
    pmem.psync();
    drop(be);
    drop(_rt);
    pmem.crash(&CrashPolicy::strict()).expect("drain crash");
    let (_rt2, be2, report2) = grid_reopen(pmem);
    assert_eq!(
        be2.len(),
        0,
        "crash point {point}: drained backend still holds entries"
    );
    assert!(
        report2.live_blocks >= drained_base,
        "crash point {point}: drained image lost blocks ({} live, {drained_base} baseline)",
        report2.live_blocks
    );
    let extra = report2.live_blocks - drained_base;
    assert_eq!(
        extra % log_blocks,
        0,
        "crash point {point}: {extra} blocks leaked after draining all records"
    );
    assert!(
        extra / log_blocks <= (NTHREADS - 1) as u64,
        "crash point {point}: {} extra redo logs for {NTHREADS} workers",
        extra / log_blocks
    );
}

/// Acceptance: concurrent insert / RMW / remove churn recovers with no
/// torn records, no phantom map entries, and exact block accounting.
#[test]
fn grid_churn_survives_concurrent_crash_sweep() {
    silence_crash_panics();
    // One redo log's footprint, measured on the bank pool: the log layout
    // depends only on the (shared, default) heap geometry.
    let (_, log_blocks) = bank_baselines();
    let (full, rec_blocks, drained) = grid_baselines();
    let total = torture_count(NTHREADS, grid_setup, grid_workload);
    assert!(total > 0, "grid workload performed no persistence ops");
    let summary = torture_sweep(
        strided_points(total, 20),
        FaultPlan::count(),
        NTHREADS,
        grid_setup,
        grid_workload,
        |pmem, outcome| grid_verify(full, rec_blocks, drained, log_blocks, pmem, outcome),
    );
    assert!(
        summary.points_injected > 0,
        "no crash point fired inside the concurrent workload"
    );
}

/// Exhaustive randomized variant of the grid torture. Run with `--ignored`.
#[test]
#[ignore = "full randomized torture sweep; run with --ignored"]
fn grid_churn_survives_exhaustive_randomized_torture() {
    silence_crash_panics();
    let (_, log_blocks) = bank_baselines();
    let (full, rec_blocks, drained) = grid_baselines();
    let total = torture_count(NTHREADS, grid_setup, grid_workload);
    for seed in 0..2u64 {
        let plan = FaultPlan::count().with_policy(CrashPolicy::adversarial(seed));
        let summary = torture_sweep(
            0..total + NTHREADS as u64,
            plan,
            NTHREADS,
            grid_setup,
            grid_workload,
            |pmem, outcome| grid_verify(full, rec_blocks, drained, log_blocks, pmem, outcome),
        );
        assert!(summary.points_injected > 0, "seed {seed}: nothing injected");
    }
}

// ---------------------------------------------------------------------------
// Satellite: concurrent insert/remove block conservation (no leaks, no
// double frees) — crash-free, the churn itself is the stressor.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_insert_remove_conserves_blocks() {
    let image = |churn: bool| -> u64 {
        let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
        let rt = register_kvstore(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .expect("pool");
        let be = JnvmBackend::create(&rt, 4, false).expect("backend");
        let grid = Arc::new(DataGrid::new(
            Arc::new(be),
            GridConfig {
                cache_capacity: 0,
                ..GridConfig::default()
            },
        ));
        // Pre-size the map shards so the churn below never grows them:
        // growth order would otherwise differ between the two runs.
        for t in 0..NTHREADS {
            for k in 0..KEYS_PER_THREAD {
                let v = grid_val(t, k, "init");
                assert!(grid.insert(&Record::ycsb(&grid_key(t, k), &[v.clone(), v])));
            }
        }
        for t in 0..NTHREADS {
            for k in 0..KEYS_PER_THREAD {
                assert!(grid.remove(&grid_key(t, k)));
            }
        }
        if churn {
            std::thread::scope(|s| {
                for t in 0..NTHREADS {
                    let grid = Arc::clone(&grid);
                    s.spawn(move || {
                        for round in 0..3 {
                            for k in 0..KEYS_PER_THREAD {
                                let v = grid_val(t, k, &format!("{round:04}"));
                                assert!(grid
                                    .insert(&Record::ycsb(&grid_key(t, k), &[v.clone(), v])));
                            }
                            for k in 0..KEYS_PER_THREAD {
                                assert!(grid.remove(&grid_key(t, k)));
                            }
                        }
                    });
                }
            });
        }
        grid.backend().sync();
        drop(grid);
        drop(rt);
        pmem.crash(&CrashPolicy::strict()).expect("crash");
        let (_rt, be, report) = grid_reopen(&pmem);
        assert_eq!(be.len(), 0);
        report.live_blocks
    };
    let quiet = image(false);
    let churned = image(true);
    assert_eq!(
        quiet, churned,
        "concurrent insert/remove churn leaked or double-freed blocks"
    );
}
