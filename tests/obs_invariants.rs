//! Invariant tests for the `jnvm-obs` observability layer: the metrics it
//! reports must be *conserved* quantities, not best-effort samples.
//!
//! The contracts under test:
//!
//! * **acked == sampled** — every `Ok`-acked server write records exactly
//!   one `commit-ack` latency sample (counted at ticket resolution, so a
//!   dead client socket cannot skew either side);
//! * **fences attributed** — at quiescence, the devices' pwb/fence
//!   counters equal the sum of the per-ordering-point label counters
//!   (plus the `(unattributed)` bucket that thread-exit flushes feed),
//!   across a sharded *and* replicated server;
//! * **span conservation** — per-ring span counts always sum to the
//!   global per-kind totals, including across failover
//!   (promotion/degrade must neither lose nor double-count spans);
//! * **histogram linearity** — concurrent recording and
//!   `Histogram::merge` agree exactly with a sequential oracle;
//! * **snapshot completeness** — `StatsSnapshot`'s array round-trip
//!   covers every field, so `delta`/`absorb` cannot silently drop a
//!   counter added later;
//! * **off mode is inert** — with `JNVM_OBS=off`, span sites and fence
//!   hooks move no counter and register nothing; and log mode stays
//!   within the fig15 overhead budget on the CrashSim op path.
//!
//! The obs registry is process-global, so every test serializes on one
//! mutex and measures *deltas* across its own window.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use jnvm_repro::faultsim::strided_points;
use jnvm_repro::heap::HeapConfig;
use jnvm_repro::jnvm::JnvmBuilder;
use jnvm_repro::kvstore::{
    register_kvstore, Backend, DataGrid, GridConfig, JnvmBackend, Record, ShardedKv,
};
use jnvm_repro::obs::{self, Histogram, ObsMode};
use jnvm_repro::pmem::{LatencyProfile, Pmem, PmemConfig, SimMode, StatsSnapshot};
use jnvm_repro::server::{
    kill_during_traffic, run_loadgen, traffic_op_count, LoadgenConfig, Server, ServerConfig,
    ShardHandle, TortureConfig,
};

/// The obs registry and mode switch are process-global: one test at a
/// time.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Flips obs into the given mode for the test's scope, then restores
/// whatever `JNVM_OBS` says.
struct ModeGuard;
fn with_mode(mode: ObsMode) -> ModeGuard {
    obs::set_mode(mode);
    ModeGuard
}
impl Drop for ModeGuard {
    fn drop(&mut self) {
        obs::set_mode(ObsMode::from_env());
    }
}

/// Pool shards for the server runs: `JNVM_SHARDS` or 2 (the acceptance
/// configuration runs this suite with `JNVM_SHARDS=2 JNVM_REPLICAS=2`).
fn pool_shards_from_env() -> usize {
    std::env::var("JNVM_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// Replicas per shard: `JNVM_REPLICAS` or 2.
fn pool_replicas_from_env() -> usize {
    std::env::var("JNVM_REPLICAS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| (1..=2).contains(&n))
        .unwrap_or(2)
}

// ---------------------------------------------------------------------------
// StatsSnapshot completeness: the array round-trip is the compile-and-run
// guard that keeps delta/absorb exhaustive.
// ---------------------------------------------------------------------------

/// Every field must survive `to_array`/`from_array` and flow through
/// `delta`/`absorb` independently. Adding a counter to `StatsSnapshot`
/// without growing `FIELDS`/`FIELD_NAMES` is a compile error (exhaustive
/// destructuring); adding it inconsistently fails here.
#[test]
fn stats_snapshot_arrays_cover_every_field() {
    assert_eq!(StatsSnapshot::FIELDS, StatsSnapshot::FIELD_NAMES.len());
    let mut arr = [0u64; StatsSnapshot::FIELDS];
    for (i, v) in arr.iter_mut().enumerate() {
        // Distinct, structureless values: a swapped pair of fields in
        // either direction of the round-trip cannot cancel out.
        *v = (i as u64 + 1) * 7919;
    }
    let snap = StatsSnapshot::from_array(arr);
    assert_eq!(snap.to_array(), arr, "to_array/from_array round-trip");

    for i in 0..StatsSnapshot::FIELDS {
        let name = StatsSnapshot::FIELD_NAMES[i];
        let mut unit = [0u64; StatsSnapshot::FIELDS];
        unit[i] = 3;
        let probe = StatsSnapshot::from_array(unit);

        let mut acc = snap;
        acc.absorb(&probe);
        let mut want = arr;
        want[i] += 3;
        assert_eq!(acc.to_array(), want, "absorb dropped field {name}");

        let d = acc.delta(&snap);
        assert_eq!(d.to_array(), unit, "delta dropped field {name}");
    }
}

// ---------------------------------------------------------------------------
// Histogram linearity under concurrency.
// ---------------------------------------------------------------------------

const HIST_THREADS: u64 = 8;
const HIST_PER_THREAD: u64 = 4000;

/// A deterministic, wide-spread sample stream per thread: spans several
/// orders of magnitude so many histogram buckets are exercised.
fn hist_value(t: u64, i: u64) -> u64 {
    1 + ((t * HIST_PER_THREAD + i) * 2_654_435_761) % 50_000_000
}

/// N threads hammer one named latency histogram; the snapshot must equal
/// the sequential oracle in count, min, max, and every quantile — and a
/// per-thread `merge` of partial histograms must equal it too. This pins
/// the lossless-merge and quantile-rank contracts under concurrency.
#[test]
fn concurrent_histogram_matches_sequential_oracle() {
    let _g = obs_lock();
    let _m = with_mode(ObsMode::Log);
    const NAME: &str = "obs-test-concurrent-hist";
    assert_eq!(
        obs::metrics_snapshot().hist_count(NAME),
        0,
        "histogram name must be fresh for this test"
    );

    std::thread::scope(|s| {
        for t in 0..HIST_THREADS {
            s.spawn(move || {
                for i in 0..HIST_PER_THREAD {
                    obs::record_latency(NAME, hist_value(t, i));
                }
            });
        }
    });

    let mut oracle = Histogram::new();
    let mut parts: Vec<Histogram> = Vec::new();
    for t in 0..HIST_THREADS {
        let mut part = Histogram::new();
        for i in 0..HIST_PER_THREAD {
            oracle.record(hist_value(t, i));
            part.record(hist_value(t, i));
        }
        parts.push(part);
    }
    let mut merged = Histogram::new();
    for p in &parts {
        merged.merge(p);
    }

    let snap = obs::metrics_snapshot();
    let (_, recorded) = snap
        .hists
        .iter()
        .find(|(n, _)| *n == NAME)
        .expect("histogram registered");

    for (label, h) in [("concurrent", recorded), ("merged", &merged)] {
        assert_eq!(h.count(), oracle.count(), "{label}: count");
        assert_eq!(h.summary(), oracle.summary(), "{label}: summary");
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let got = h.quantile(q);
            assert_eq!(got, oracle.quantile(q), "{label}: quantile({q})");
            assert!(
                (oracle.summary().min_ns..=oracle.summary().max_ns).contains(&got),
                "{label}: quantile({q}) = {got} outside [min, max]"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The server contracts: acked == sampled, fences attributed.
// ---------------------------------------------------------------------------

struct ReplicatedServer {
    /// `pmems[shard][replica]`; replica 0 is the primary.
    pmems: Vec<Vec<Arc<Pmem>>>,
    /// One `ShardedKv` per replica position; kept alive for the run.
    kvs: Vec<ShardedKv>,
    server: Server,
}

/// Build a live sharded + replicated server over fresh CrashSim devices —
/// the same topology `kill_during_traffic` tortures, minus the crash.
fn build_replicated(pool_shards: usize, replicas: usize) -> ReplicatedServer {
    let grid_cfg = GridConfig {
        cache_capacity: 0,
        ..GridConfig::default()
    };
    let mut kvs = Vec::with_capacity(replicas);
    let mut by_replica: Vec<Vec<Arc<Pmem>>> = Vec::with_capacity(replicas);
    for r in 0..replicas {
        let role = if r == 0 { "primary" } else { "backup" };
        let pmems: Vec<Arc<Pmem>> = (0..pool_shards)
            .map(|s| {
                Pmem::new(PmemConfig::crash_sim(48 << 20).with_label(&format!("s{s}/{role}")))
            })
            .collect();
        let kv = ShardedKv::create(&pmems, 16, true, grid_cfg).expect("create pools");
        by_replica.push(pmems);
        kvs.push(kv);
    }
    let shard_sets: Vec<Vec<ShardHandle>> = (0..pool_shards)
        .map(|s| {
            kvs.iter()
                .map(|kv| {
                    let shard = &kv.shards()[s];
                    ShardHandle {
                        grid: Arc::clone(&shard.grid),
                        be: Arc::clone(&shard.be),
                        pmem: Arc::clone(&shard.pmem),
                    }
                })
                .collect()
        })
        .collect();
    let server = Server::start_replicated(shard_sets, ServerConfig::default()).expect("bind");
    let pmems = (0..pool_shards)
        .map(|s| by_replica.iter().map(|r| Arc::clone(&r[s])).collect())
        .collect();
    ReplicatedServer { pmems, kvs, server }
}

/// The headline metrics invariants, on the acceptance topology
/// (`JNVM_SHARDS=2 JNVM_REPLICAS=2` in CI):
///
/// 1. the server's `acked_writes` counter equals the `commit-ack`
///    histogram's count delta — one sample per ack, no more, no less;
/// 2. the devices' pwb and fence counters (absorbed over every shard and
///    replica, exactly as the `STATS` report does) equal the obs layer's
///    per-label sums, once the main thread flushes its pending cell —
///    every fence the devices charged is attributed to some ordering
///    point (or explicitly `(unattributed)`), none invented.
#[test]
fn server_acks_and_fences_reconcile_with_obs_registry() {
    let _g = obs_lock();
    let _m = with_mode(ObsMode::Log);
    obs::flush_thread_pending();
    let before = obs::metrics_snapshot();

    // The devices are created inside the measurement window, so their
    // *total* stats are exactly the in-window charges — pool carving and
    // backend setup count on both sides of the reconciliation.
    let ctx = build_replicated(pool_shards_from_env(), pool_replicas_from_env());
    let load = run_loadgen(
        ctx.server.addr(),
        &LoadgenConfig {
            conns: 4,
            ops_per_conn: 60,
            pipeline: 8,
            fields: 3,
            value_size: 48,
            seed: 0,
        },
    );
    let stats = ctx.server.stats();
    // Joins every committer, handler, and backup-endpoint thread — their
    // TLS destructors flush leftover pending fence counts on the way out.
    ctx.server.shutdown();
    drop(ctx.kvs);
    obs::flush_thread_pending();
    let after = obs::metrics_snapshot();
    let mut dev = StatsSnapshot::default();
    for p in ctx.pmems.iter().flatten() {
        dev.absorb(&p.stats());
    }

    assert_eq!(load.errors, 0, "crash-free traffic must not error");
    assert!(load.acked_writes > 0);
    assert_eq!(stats.acked_writes, load.acked_writes);
    assert_eq!(
        stats.acked_writes,
        after.hist_count("commit-ack") - before.hist_count("commit-ack"),
        "every Ok-acked write must record exactly one commit-ack sample"
    );

    assert!(dev.pwbs > 0 && dev.pfences + dev.psyncs > 0);
    assert_eq!(
        after.pwbs() - before.pwbs(),
        dev.pwbs,
        "device pwbs must equal the per-label pwb sums"
    );
    assert_eq!(
        after.fences() - before.fences(),
        dev.pfences + dev.psyncs,
        "device fences must equal the per-label fence sums"
    );
}

/// Span conservation across failover: a replicated kill that promotes the
/// backup (and a backup kill that degrades the shard) must leave the
/// per-ring span counts summing exactly to the global per-kind totals —
/// promotion/degrade may abandon threads and rings, but never a span.
#[test]
fn failover_conserves_span_accounting() {
    let _g = obs_lock();
    let _m = with_mode(ObsMode::Log);
    let cfg = TortureConfig {
        load: LoadgenConfig {
            conns: 4,
            ops_per_conn: 40,
            pipeline: 8,
            fields: 3,
            value_size: 48,
            seed: 0,
        },
        pool_shards: 2,
        replicas: 2,
        crash_shard: 0,
        recovery_threads: 2,
        ..TortureConfig::default()
    };
    let before = obs::span_totals();
    let total = traffic_op_count(&cfg);
    // One primary kill (promotion) and one backup kill (degrade).
    for (crash_replica, point) in [(0, total / 8), (1, total / 4)] {
        let cfg = TortureConfig {
            crash_replica,
            ..cfg
        };
        kill_during_traffic(point, &cfg).unwrap_or_else(|e| panic!("{e}"));
    }
    let totals = obs::span_totals();
    let rings = obs::ring_totals();
    assert_eq!(
        totals, rings,
        "per-ring span counts must sum to the global per-kind totals"
    );
    let recorded: u64 = totals.iter().sum::<u64>() - before.iter().sum::<u64>();
    assert!(recorded > 0, "the failover runs recorded no spans");
    // The replicated path must actually have exercised the repl spans.
    let send = obs::SpanKind::ReplSend as usize;
    assert!(
        totals[send] > before[send],
        "no repl_send spans across a replicated run"
    );
}

/// A strided mini-sweep with span-conservation checked after *every*
/// kill: crashes may unwind committers mid-span (those spans are simply
/// never recorded), but accounting must never tear.
#[test]
fn kill_sweep_never_tears_span_accounting() {
    let _g = obs_lock();
    let _m = with_mode(ObsMode::Log);
    let cfg = TortureConfig {
        load: LoadgenConfig {
            conns: 4,
            ops_per_conn: 30,
            pipeline: 8,
            fields: 2,
            value_size: 32,
            seed: 0,
        },
        pool_shards: pool_shards_from_env(),
        replicas: pool_replicas_from_env(),
        ..TortureConfig::default()
    };
    let total = traffic_op_count(&cfg);
    for point in strided_points(total, 3) {
        kill_during_traffic(point, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            obs::span_totals(),
            obs::ring_totals(),
            "span accounting torn after kill at {point}"
        );
    }
}

// ---------------------------------------------------------------------------
// Off mode: one branch, no movement, no registration.
// ---------------------------------------------------------------------------

/// With obs off, span sites, fence hooks, ordering points, and latency
/// recording must move nothing: no spans, no label counters, no
/// histogram counts, and — the allocation guard — no new rings, labels,
/// or histograms registered.
#[test]
fn off_mode_moves_no_counters_and_registers_nothing() {
    let _g = obs_lock();
    let _m = with_mode(ObsMode::Off);
    obs::flush_thread_pending();
    let before = obs::metrics_snapshot();
    let before_spans = obs::span_totals();
    let before_rings = obs::ring_count();

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    let b = obs::span_begin();
                    assert_eq!(b, obs::NOT_TRACING, "off mode must not read the clock");
                    obs::span_end(obs::SpanKind::FaStage, b);
                    obs::point_span(obs::SpanKind::OrderingPoint, "obs-test-off-label");
                    obs::note_pwb();
                    obs::note_fence();
                    obs::note_psync();
                    obs::note_ordering_point("obs-test-off-label");
                    obs::record_latency("obs-test-off-hist", 42);
                }
            });
        }
    });
    obs::flush_thread_pending();

    let after = obs::metrics_snapshot();
    assert_eq!(obs::span_totals(), before_spans, "off mode recorded spans");
    assert_eq!(
        obs::ring_count(),
        before_rings,
        "off mode registered a thread ring"
    );
    assert_eq!(
        after.labels, before.labels,
        "off mode moved a label counter (or registered a label)"
    );
    assert_eq!(
        after.hists.len(),
        before.hists.len(),
        "off mode registered a histogram"
    );
    assert_eq!(after.hist_count("obs-test-off-hist"), 0);
    assert!(after.label("obs-test-off-label").is_none());
}

/// A device driven with obs off charges identical stats to one driven in
/// log mode — the hooks observe, never perturb (the kvstore group tests
/// separately pin the absolute fence counts).
#[test]
fn obs_mode_never_changes_device_stats() {
    let _g = obs_lock();
    let run = |mode: ObsMode| -> [u64; StatsSnapshot::FIELDS] {
        let _m = with_mode(mode);
        let pmem = Pmem::new(PmemConfig::crash_sim(8 << 20));
        let rt = register_kvstore(JnvmBuilder::new())
            .create(Arc::clone(&pmem), HeapConfig::default())
            .expect("pool");
        let be = Arc::new(JnvmBackend::create(&rt, 4, true).expect("backend"));
        let grid = DataGrid::new(
            Arc::clone(&be) as Arc<dyn Backend>,
            GridConfig {
                cache_capacity: 0,
                ..GridConfig::default()
            },
        );
        for i in 0..40 {
            let v = format!("val-{i:04}").into_bytes();
            assert!(grid.insert(&Record::ycsb(&format!("k{i}"), &[v.clone(), v])));
        }
        pmem.psync();
        pmem.stats().to_array()
    };
    assert_eq!(
        run(ObsMode::Off),
        run(ObsMode::Log),
        "observability changed what the device did"
    );
}

// ---------------------------------------------------------------------------
// Log-mode overhead sanity (time-bounded; fig15 is the precise gate).
// ---------------------------------------------------------------------------

/// Best-of-3 tight-loop cost of one call to `f`, in nanoseconds. Tight
/// loops amortize scheduler bursts over millions of iterations, so these
/// numbers are stable where a wall-clock A/B of the full op path is not
/// (round-to-round variance on the spin-modeled CrashSim path is ±20%,
/// which no interleaving can average below a 5% bound).
fn ns_per_call(iters: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Time-bounded fig15 sanity: log mode must cost ≤5% of the CrashSim op
/// path, derived the same way `fig15_obs_overhead` derives its off-mode
/// number: per-site costs from tight loops, site counts from the *real*
/// workload's device stats and span totals, divided by the measured op
/// time. The denominator is the best (least-interrupted) round, which
/// *under*estimates op time and so overestimates the overhead — the
/// conservative direction. The `fig15_obs_overhead --assert` bench is
/// the measured, full-scale gate.
#[test]
fn log_mode_overhead_stays_within_budget() {
    let _g = obs_lock();
    let _m = with_mode(ObsMode::Log);
    // Per-site log-mode costs, tight-loop measured.
    let span_ns = ns_per_call(500_000, || {
        let b = obs::span_begin();
        obs::span_end(obs::SpanKind::FaStage, b);
    });
    let hook_ns = ns_per_call(2_000_000, obs::note_pwb);
    let point_ns = ns_per_call(500_000, || {
        obs::note_ordering_point("obs-test-overhead-point");
    });
    obs::flush_thread_pending();

    // The real workload: YCSB-style rmw churn over a CrashSim grid with
    // the Optane latency profile and failure-atomic blocks on — the
    // span-heaviest configuration.
    let pmem = Pmem::new(PmemConfig {
        size: 16 << 20,
        mode: SimMode::CrashSim,
        latency: LatencyProfile::optane_like(),
        ..PmemConfig::crash_sim(0)
    });
    let rt = register_kvstore(JnvmBuilder::new())
        .create(Arc::clone(&pmem), HeapConfig::default())
        .expect("pool");
    let be = Arc::new(JnvmBackend::create(&rt, 4, true).expect("backend"));
    let grid = DataGrid::new(
        Arc::clone(&be) as Arc<dyn Backend>,
        GridConfig {
            cache_capacity: 0,
            ..GridConfig::default()
        },
    );
    for i in 0..32 {
        let v = format!("val-{i:04}").into_bytes();
        assert!(grid.insert(&Record::ycsb(&format!("k{i}"), &[v.clone(), v])));
    }
    let stats_before = pmem.stats();
    let spans_before: u64 = obs::span_totals().iter().sum();
    let mut best = Duration::MAX;
    let mut total_ops = 0u64;
    for round in 0..6u32 {
        let start = Instant::now();
        for batch in 0..20u32 {
            for i in 0..32 {
                let v = format!("v{round:02}{batch:03}-{i:04}").into_bytes();
                assert!(grid.rmw(&format!("k{i}"), 0, &v));
            }
        }
        best = best.min(start.elapsed());
        total_ops += 20 * 32;
    }
    let d = pmem.stats().delta(&stats_before);
    let spans = obs::span_totals().iter().sum::<u64>() - spans_before;
    let ops = total_ops as f64;
    // Ordering points record a point span *and* claim pending counts;
    // price them separately from plain begin/end spans.
    let points_per_op = d.ordering_points() as f64 / ops;
    let spans_per_op = (spans - d.ordering_points()) as f64 / ops;
    let hooks_per_op = (d.pwbs + d.pfences + d.psyncs) as f64 / ops;
    assert!(spans_per_op > 0.0 && points_per_op > 0.0 && hooks_per_op > 0.0);

    let obs_ns_per_op =
        spans_per_op * span_ns + points_per_op * point_ns + hooks_per_op * hook_ns;
    let op_ns = best.as_nanos() as f64 / (20.0 * 32.0);
    let pct = obs_ns_per_op / op_ns * 100.0;
    assert!(
        pct <= 5.0,
        "log mode costs {obs_ns_per_op:.0} ns of a {op_ns:.0} ns op ({pct:.2}%): \
         {spans_per_op:.1} spans x {span_ns:.0} ns + {points_per_op:.1} points x \
         {point_ns:.0} ns + {hooks_per_op:.1} hooks x {hook_ns:.1} ns"
    );
}
