//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of the rand 0.10 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`RngExt::random`],
//! [`RngExt::random_range`], [`rngs::SmallRng`] / [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic across platforms and runs, which is all the
//! simulator and benchmarks require (statistical quality is far beyond
//! their needs, cryptographic quality is explicitly *not* provided).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy. The shim derives it from the
    /// system clock — benchmarks only; tests always seed explicitly.
    fn from_os_rng() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types samplable uniformly over their whole domain via [`RngExt::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u8::sample(rng) as i8
    }
}

impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u16::sample(rng) as i16
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u32::sample(rng) as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for isize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`: the top 53 bits scaled by 2^-53.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the modulo bias
                // of a plain `% span` would be harmless here, but this is
                // just as cheap.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <$t as Standard>::sample(rng) as $t;
                }
                let span = (end as i128 - start as i128 + 1) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling methods (rand 0.10 spells this `RngExt`; the
/// old `Rng` name is re-exported below for call sites that import both).
pub trait RngExt: RngCore {
    /// Sample a value uniformly over `T`'s whole domain (`f64`: `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// Probability-`p` coin flip.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let n = rest.len();
            rest.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
        }
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Legacy alias: older rand spells the extension trait `Rng`.
pub use RngExt as Rng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by both named generators.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix cannot produce it
        // from any seed, but keep the guard for clarity.
        if s == [0; 4] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Small fast generator (xoshiro256++ here, like upstream).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The "standard" generator. Upstream uses ChaCha12; the shim reuses
    /// xoshiro256++ with a domain-separated seed — nothing in this
    /// workspace needs cryptographic randomness.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed ^ 0x51d5_7a2f_8c6b_e3a1))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let r = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&r));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.random_range(0..3u8) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }
}
