//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest the workspace uses: the [`proptest!`] test
//! macro, [`strategy::Strategy`] with `prop_map`, range / tuple / `any` /
//! [`prop_oneof!`] / `collection::vec` strategies, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its exact inputs instead of
//!   a minimized counterexample.
//! * **Deterministic seeding.** Cases derive from a fixed per-test seed
//!   (FNV of the test name), so every run explores the same inputs —
//!   there are no regression files, and CI is reproducible by
//!   construction.

pub mod strategy {
    use rand::RngExt;

    /// The RNG driving generation.
    pub type TestRng = rand::rngs::SmallRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy (what [`crate::prop_oneof!`] arms become).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed alternatives (the
    /// [`crate::prop_oneof!`] backend). Unweighted arms get weight 1,
    /// matching upstream's uniform default.
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Build from at least one equally-likely alternative.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        /// Build from `(weight, strategy)` alternatives; an arm is picked
        /// with probability `weight / total_weight`.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            assert!(
                options.iter().all(|&(w, _)| w > 0),
                "prop_oneof! arm weights must be positive"
            );
            let total_weight = options.iter().map(|&(w, _)| w as u64).sum();
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.random_range(0..self.total_weight);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick past total weight")
        }
    }

    /// Types with a canonical whole-domain strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, bool, f64);

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.random::<u32>() as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.random::<u64>() as i64
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            // Sampling the half-open range then occasionally returning the
            // endpoint is not worth the code; the closed endpoint has
            // measure zero for every property in this workspace.
            let (s, e) = (*self.start(), *self.end());
            rng.random_range(s..e.max(s + f64::EPSILON))
        }
    }

    /// String strategies from a small regex subset (upstream accepts any
    /// regex; the shim parses sequences of `literal`, `[class]`,
    /// `[class]{n}` and `[class]{m,n}` atoms, where a class holds literal
    /// characters and `a-z` ranges — enough for identifier-shaped keys).
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self)
                .unwrap_or_else(|| panic!("string strategy: unsupported pattern {self:?}"));
            let mut out = String::new();
            for (chars, lo, hi) in &atoms {
                let n = if lo == hi { *lo } else { rng.random_range(*lo..=*hi) };
                for _ in 0..n {
                    out.push(chars[rng.random_range(0..chars.len())]);
                }
            }
            out
        }
    }

    /// Parse into `(alphabet, min_repeat, max_repeat)` atoms; `None` means
    /// the pattern uses regex features the shim does not support.
    fn parse_pattern(pat: &str) -> Option<Vec<(Vec<char>, usize, usize)>> {
        let mut atoms = Vec::new();
        let mut it = pat.chars().peekable();
        while let Some(c) = it.next() {
            let chars: Vec<char> = match c {
                '[' => {
                    let mut class = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = it.next()?;
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && it.peek() != Some(&']') => {
                                let end = it.next()?;
                                let start = prev.take()?;
                                for v in (start as u32 + 1)..=(end as u32) {
                                    class.push(char::from_u32(v)?);
                                }
                            }
                            c => {
                                if let Some(p) = prev.replace(c) {
                                    class.push(p);
                                }
                            }
                        }
                    }
                    if let Some(p) = prev {
                        class.push(p);
                    }
                    if class.is_empty() {
                        return None;
                    }
                    class
                }
                '\\' => vec![it.next()?],
                '{' | '}' | '(' | ')' | '*' | '+' | '?' | '|' | '.' => return None,
                c => vec![c],
            };
            let (lo, hi) = if it.peek() == Some(&'{') {
                it.next();
                let mut spec = String::new();
                loop {
                    let c = it.next()?;
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
                    None => {
                        let n = spec.parse().ok()?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push((chars, lo, hi));
        }
        Some(atoms)
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, len: size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    pub use super::strategy::TestRng;

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the message already names the inputs.
        Fail(String),
        /// A `prop_assume!` rejected the inputs; try another case.
        Reject,
    }

    /// Runner configuration (`cases` is the only knob this shim honors).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    fn fnv(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Drive one property: run `case` until `cfg.cases` successes, with a
    /// bounded rejection budget. Deterministic per test name.
    pub fn run_cases(
        name: &str,
        cfg: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::seed_from_u64(fnv(name));
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let reject_budget = cfg.cases as u64 * 256;
        let mut case_no: u64 = 0;
        while passed < cfg.cases {
            case_no += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= reject_budget,
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected} after {passed} passing cases)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case #{case_no}: {msg}")
                }
            }
        }
    }
}

/// The everything-import, mirroring upstream.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Fail the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l);
    }};
}

/// Reject the current inputs (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choice among strategies of a common value type: uniform for plain
/// arms, or biased via upstream's `weight => strategy` arm syntax.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                stringify!($name),
                &$cfg,
                |__rng| {
                    let mut __inputs: Vec<(&str, String)> = Vec::new();
                    $(
                        let __value = $crate::strategy::Strategy::new_value(&($strat), __rng);
                        __inputs.push((stringify!($arg), format!("{:?}", &__value)));
                        let $arg = __value;
                    )+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                ::core::result::Result::Ok(())
                            },
                        ),
                    );
                    match __outcome {
                        Ok(Ok(())) => Ok(()),
                        Ok(Err($crate::test_runner::TestCaseError::Reject)) => {
                            Err($crate::test_runner::TestCaseError::Reject)
                        }
                        Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                            let inputs: Vec<String> = __inputs
                                .iter()
                                .map(|(n, v)| format!("{n} = {v}"))
                                .collect();
                            Err($crate::test_runner::TestCaseError::Fail(format!(
                                "{msg}\n inputs: {}",
                                inputs.join(", ")
                            )))
                        }
                        Err(panic) => {
                            let inputs: Vec<String> = __inputs
                                .iter()
                                .map(|(n, v)| format!("{n} = {v}"))
                                .collect();
                            eprintln!(
                                "proptest '{}' panicked with inputs: {}",
                                stringify!($name),
                                inputs.join(", ")
                            );
                            ::std::panic::resume_unwind(panic)
                        }
                    }
                },
            );
        }
        $crate::__proptest_fns!{$cfg; $($rest)*}
    };
}

/// The property-test block macro: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that generates inputs and checks the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{$cfg; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{$crate::test_runner::ProptestConfig::default(); $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..100, 1u64..50), c in any::<u8>()) {
            prop_assert!(a < 100);
            prop_assert!((1..50).contains(&b));
            let _ = c;
        }

        #[test]
        fn oneof_and_vec(v in collection::vec(prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            Just(99u32),
        ], 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in &v {
                prop_assert!(*x == 99 || (*x % 2 == 0 && *x < 20), "bad element {x}");
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let caught = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                "always_fails",
                &ProptestConfig::with_cases(4),
                |_rng| {
                    Err(crate::test_runner::TestCaseError::Fail("boom".into()))
                },
            )
        });
        let msg = *caught.expect_err("must panic").downcast::<String>().unwrap();
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{Strategy, TestRng};
        use rand::SeedableRng;
        let s = (0u64..1000, 0u64..1000);
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
