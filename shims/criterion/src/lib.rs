//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId` —
//! over a simple wall-clock runner: per sample, the iteration count is
//! calibrated to ~5 ms of work, and the mean ns/iter of the best half of
//! samples is reported. No statistical analysis, plots, or baselines; the
//! numbers are indicative, which is all the simulated device warrants.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            _name: (),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.sample_size, &id.into(), f);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _name: (),
}

impl BenchmarkGroup<'_> {
    /// Time `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.criterion.sample_size, &id.into(), f);
        self
    }

    /// Time `f(bencher, input)` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.criterion.sample_size, &id.into(), |b| f(b, input));
        self
    }

    /// Close the group (upstream flushes reports here; the shim prints as
    /// it goes).
    pub fn finish(&mut self) {}
}

/// A `function / parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label with a function name and a parameter rendering.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Passed to the closure under test; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_sample: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`, preventing its result from being optimized out.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ~target_sample.
        self.iters_per_sample = 1;
        loop {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.target_sample || self.iters_per_sample >= 1 << 30 {
                break;
            }
            let grow = if elapsed < self.target_sample / 16 { 16 } else { 2 };
            self.iters_per_sample = self.iters_per_sample.saturating_mul(grow);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(sample_size: usize, id: &BenchmarkId, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        target_sample: Duration::from_millis(5),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{:<40} (no measurement: Bencher::iter never called)", id.label);
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    // Mean of the faster half: robust against scheduler noise without
    // criterion's full outlier analysis.
    let half = &per_iter[..per_iter.len().div_ceil(2)];
    let mean = half.iter().sum::<f64>() / half.len() as f64;
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{:<40} {:>12.1} ns/iter (median {:.1}, {} iters x {} samples)",
        id.label, mean, median, b.iters_per_sample, b.samples.len()
    );
}

/// Declare a benchmark group; both the positional and the
/// `name/config/targets` forms of upstream are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim-selftest");
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, n| {
            b.iter(|| black_box(*n) * 3)
        });
        g.finish();
    }

    criterion_group! {
        name = selftest;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn groups_run_to_completion() {
        selftest();
    }
}
