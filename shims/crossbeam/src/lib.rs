//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::queue::SegQueue` is used by this workspace. The shim
//! trades crossbeam's lock-free segmented queue for a mutexed `VecDeque`
//! with the same API and semantics (unbounded MPMC, FIFO). Contention on
//! these queues is light (free-lists, write-pending queues), so the
//! performance difference is irrelevant to what the simulator measures.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub const fn new() -> SegQueue<T> {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Append an element at the back.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Remove the front element, `None` when empty.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements (racy under concurrency, like
        /// crossbeam's).
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue is empty (racy under concurrency).
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|p| p.into_inner())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q = Arc::new(SegQueue::new());
        let producers: Vec<_> = (0..4u64)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        q.push(t * 1000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = q.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 4000);
    }
}
