//! Offline stand-in for `parking_lot`.
//!
//! The build environment cannot reach crates.io, so this crate wraps
//! `std::sync` primitives behind the (poison-free, `Result`-free) subset
//! of the parking_lot API the workspace uses: `Mutex::lock`,
//! `RwLock::read` / `RwLock::write`, plus `try_*` variants. Poisoning is
//! deliberately swallowed — parking_lot has no poisoning, and the callers
//! were written against that contract.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
    TryLockError,
};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create an unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking. A panic in a previous holder does not
    /// poison the lock (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create an unlocked rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire exclusive access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire shared access if no writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire exclusive access if the lock is free.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        assert!(l.try_write().is_some());
    }
}
